//! A columnar (structure-of-arrays) fingerprint index.
//!
//! [`FingerprintDb`] stores one heap-allocated [`Fingerprint`] per
//! location, so a k-NN scan chases a pointer per candidate and pays a
//! virtual `dyn Dissimilarity` call plus a square root per comparison.
//! [`FingerprintIndex`] flattens the database once into a dense
//! row-major `locations × APs` matrix with precomputed per-location
//! squared norms, and ranks candidates through monomorphized
//! [`MetricKernel`]s on *squared* distance — the square root is
//! deferred to the k survivors.
//!
//! Ranking on squared Euclidean distance reproduces the legacy
//! [`crate::knn::k_nearest`] ordering exactly: the squared sum is
//! accumulated in the same slice order as [`crate::metric::Euclidean`]
//! (see [`crate::metric::euclidean_sq`]), `sqrt` is monotone, and ties
//! break by lower location id in both paths.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::knn::Neighbor;
use crate::metric::{cosine, euclidean_sq, manhattan, masked_euclidean_sq};
use moloc_geometry::LocationId;
use std::cmp::Ordering;
use std::ops::Range;

/// A monomorphized ranking metric for index scans.
///
/// `rank` produces the value candidates are *ordered* by; `finalize`
/// converts a survivor's rank into the reported dissimilarity. For
/// Euclidean this splits `φ = sqrt(Σ d²)` so the scan never takes a
/// square root; metrics without a cheap monotone surrogate rank on the
/// full dissimilarity and finalize with the identity.
pub trait MetricKernel: Copy + Send + Sync + 'static {
    /// The ordering value for one candidate row.
    fn rank(query: &[f64], row: &[f64]) -> f64;

    /// The reported dissimilarity of a surviving candidate.
    fn finalize(rank: f64) -> f64;

    /// A short human-readable name for reports.
    fn name() -> &'static str;

    /// Whether `rank` is exactly [`crate::metric::euclidean_sq`] —
    /// a sum of per-AP squared differences accumulated in slice order.
    /// Only such kernels may take the blocked lane path (whose
    /// register-blocked accumulators reproduce that accumulation order
    /// bit-for-bit) and the f32 mirror prefilter (whose conservative
    /// error bound assumes the squared-difference form). Kernels that
    /// keep the default `false` are evaluated per query inside the
    /// block entry points, with identical results.
    fn block_compatible() -> bool {
        false
    }
}

/// Euclidean ranking on squared distance, `sqrt` deferred to survivors.
///
/// Bit-identical to [`crate::metric::Euclidean`]: both accumulate
/// [`crate::metric::euclidean_sq`] and apply `sqrt` to the same sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SquaredEuclidean;

impl MetricKernel for SquaredEuclidean {
    #[inline]
    fn rank(query: &[f64], row: &[f64]) -> f64 {
        euclidean_sq(query, row)
    }

    #[inline]
    fn finalize(rank: f64) -> f64 {
        rank.sqrt()
    }

    fn name() -> &'static str {
        "euclidean"
    }

    fn block_compatible() -> bool {
        true
    }
}

/// Manhattan (L1) ranking; the rank already is the dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManhattanKernel;

impl MetricKernel for ManhattanKernel {
    #[inline]
    fn rank(query: &[f64], row: &[f64]) -> f64 {
        manhattan(query, row)
    }

    #[inline]
    fn finalize(rank: f64) -> f64 {
        rank
    }

    fn name() -> &'static str {
        "manhattan"
    }
}

/// Cosine ranking; the rank already is the dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CosineKernel;

impl MetricKernel for CosineKernel {
    #[inline]
    fn rank(query: &[f64], row: &[f64]) -> f64 {
        cosine(query, row)
    }

    #[inline]
    fn finalize(rank: f64) -> f64 {
        rank
    }

    fn name() -> &'static str {
        "cosine"
    }
}

/// One retained scan candidate: rank ascending, ties broken by lower
/// row position (rows are stored in location-id order, so position
/// order is id order). Shared with the blocked kernels' per-query
/// selection tables ([`crate::block::BlockScratch`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankEntry {
    pub(crate) rank: f64,
    pub(crate) position: u32,
}

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankEntry {}

impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank
            .partial_cmp(&other.rank)
            .expect("ranks are finite")
            .then_with(|| self.position.cmp(&other.position))
    }
}

/// One survivor of a per-shard top-k scan: the pre-`finalize` rank and
/// the **global** row position. Kept in rank space (not finalized
/// dissimilarity) so the cross-shard merge orders by exactly the key
/// the serial scan selects by — `finalize` can collapse distinct ranks
/// onto one float, which would let a merge on dissimilarities break
/// ties differently than the serial scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCandidate {
    /// The candidate's `K::rank` value (finite).
    pub rank: f64,
    /// Row position in the full index (location-id order).
    pub position: u32,
}

/// Reusable k-NN selection state: a bounded candidate table whose
/// backing allocation survives across queries. After the first query at
/// a given `k`, selection performs no heap allocations.
#[derive(Debug, Default)]
pub struct KnnScratch {
    /// The best `≤ k` candidates seen so far, *unsorted* during the
    /// scan (replacement targets the current worst slot; keeping the
    /// table unsorted makes the common reject path a single float
    /// compare) and sorted once at the end.
    slots: Vec<RankEntry>,
}

impl KnnScratch {
    /// An empty scratch; capacity grows to `k` on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for queries with the given `k`.
    pub fn with_k(k: usize) -> Self {
        Self {
            slots: Vec::with_capacity(k),
        }
    }
}

/// Selects the `k` smallest ranks (ties to lower position) from a
/// position-ordered rank stream into `slots`, unsorted.
///
/// Once the table is full, a row can only displace a retained one when
/// its rank is *strictly* below the cached worst — equal ranks lose the
/// position tie-break to every retained entry — so the common reject
/// path is a single float compare. NaN ranks never pass that compare;
/// a NaN entering during the fill phase is caught by the caller's final
/// sort (`RankEntry`'s total order panics on NaN).
#[inline(always)]
fn select(mut ranks: impl Iterator<Item = f64>, k: usize, slots: &mut Vec<RankEntry>) {
    // Fill phase: the first `k` rows are all retained.
    let mut position = 0u32;
    for rank in ranks.by_ref().take(k) {
        slots.push(RankEntry { rank, position });
        position += 1;
    }
    if slots.len() < k {
        return;
    }
    // Steady state over a fixed-size table: `worst`/`worst_at` live in
    // registers and the table is only touched on (rare) replacements.
    let slots = slots.as_mut_slice();
    let mut worst_at = worst_slot(slots);
    let mut worst = slots[worst_at].rank;
    for rank in ranks {
        if rank < worst {
            slots[worst_at] = RankEntry { rank, position };
            worst_at = worst_slot(slots);
            worst = slots[worst_at].rank;
        }
        position += 1;
    }
}

/// Index of the worst slot under (rank ascending, position ascending) —
/// the replacement target once the table is full.
#[inline]
fn worst_slot(slots: &[RankEntry]) -> usize {
    let mut at = 0usize;
    for (i, e) in slots.iter().enumerate().skip(1) {
        let w = slots[at];
        if e.rank > w.rank || (e.rank == w.rank && e.position > w.position) {
            at = i;
        }
    }
    at
}

/// The flattened, cache-friendly view of a [`FingerprintDb`].
///
/// Rows are stored contiguously in location-id order; `sq_norms[i]`
/// caches `Σ rowᵢ²` for norm-based pruning and diagnostics.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::db::FingerprintDb;
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_fingerprint::index::FingerprintIndex;
/// use moloc_geometry::LocationId;
///
/// let db = FingerprintDb::from_fingerprints(vec![
///     (LocationId::new(1), Fingerprint::new(vec![-40.0, -70.0])),
///     (LocationId::new(2), Fingerprint::new(vec![-70.0, -40.0])),
/// ])?;
/// let index = FingerprintIndex::build(&db);
/// let query = Fingerprint::new(vec![-42.0, -69.0]);
/// assert_eq!(index.nearest(query.values()), LocationId::new(1));
/// # Ok::<(), moloc_fingerprint::db::DbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintIndex {
    ids: Vec<LocationId>,
    matrix: Vec<f64>,
    sq_norms: Vec<f64>,
    ap_count: usize,
    /// f32 quantized copy of `matrix` in *column-major* (AP-major)
    /// layout — `mirror[a * len() + row]` — used by the blocked scans
    /// as a half-bandwidth *prefilter*: contiguous per-AP columns let
    /// the f32 kernels vectorize across rows, and survivors are exactly
    /// rescored from `matrix`, so quantization can never change a
    /// result. `None` when values are too large to quantize safely
    /// (see [`F32_SAFE_LIMIT`]).
    mirror: Option<Vec<f32>>,
    /// Largest |value| in `matrix`; feeds the mirror's conservative
    /// quantization-error bound.
    max_abs: f64,
}

/// Largest |value| the f32 mirror accepts, for matrix and query alike.
/// Beyond this, f64→f32 conversion could overflow to infinity and a
/// subsequent `∞ − ∞` would poison ranks with NaN; below it every
/// intermediate of the f32 kernel stays finite (`4·8·(2·1e15)² ≪
/// f32::MAX`). RSS fingerprints live near `[-100, 0]`, so real surveys
/// never come close.
pub(crate) const F32_SAFE_LIMIT: f64 = 1e15;

impl FingerprintIndex {
    /// Flattens a database into the columnar layout. `O(locations ×
    /// APs)`, done once per scenario.
    pub fn build(db: &FingerprintDb) -> Self {
        let ap_count = db.ap_count();
        let mut ids = Vec::with_capacity(db.len());
        let mut matrix = Vec::with_capacity(db.len() * ap_count);
        let mut sq_norms = Vec::with_capacity(db.len());
        for (id, fp) in db.iter() {
            ids.push(id);
            matrix.extend_from_slice(fp.values());
            sq_norms.push(fp.values().iter().map(|v| v * v).sum());
        }
        let max_abs = matrix.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mirror = if max_abs < F32_SAFE_LIMIT {
            let rows = ids.len();
            let mut cols = vec![0.0f32; rows * ap_count];
            for (row, fp) in matrix.chunks_exact(ap_count.max(1)).enumerate() {
                for (a, &v) in fp.iter().enumerate() {
                    cols[a * rows + row] = v as f32;
                }
            }
            Some(cols)
        } else {
            None
        };
        Self {
            ids,
            matrix,
            sq_norms,
            ap_count,
            mirror,
            max_abs,
        }
    }

    /// Whether the index carries an f32 mirror (built whenever the
    /// survey's values fit f32 safely — effectively always for RSS).
    pub fn has_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// Number of indexed locations.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty (never true when built from a
    /// [`FingerprintDb`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of APs per fingerprint row.
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// Location ids in row order (ascending).
    pub fn ids(&self) -> &[LocationId] {
        &self.ids
    }

    /// The fingerprint row at `position`.
    pub fn row(&self, position: usize) -> &[f64] {
        &self.matrix[position * self.ap_count..(position + 1) * self.ap_count]
    }

    /// The precomputed squared norm `Σ rowᵢ²` at `position`.
    pub fn sq_norm(&self, position: usize) -> f64 {
        self.sq_norms[position]
    }

    /// The row position of a location id, if indexed.
    pub fn position_of(&self, id: LocationId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The single nearest location by Euclidean distance, ties broken
    /// by lower id (the strict `<` keeps the earliest row, and rows are
    /// in id order).
    ///
    /// # Panics
    ///
    /// Panics if the query length does not match the index's AP count.
    pub fn nearest(&self, query: &[f64]) -> LocationId {
        self.check_query(query);
        let mut best = 0u32;
        let mut best_rank = f64::INFINITY;
        self.scan_rows::<SquaredEuclidean>(query, |position, rank| {
            if rank < best_rank {
                best = position;
                best_rank = rank;
            }
        });
        self.ids[best as usize]
    }

    /// The `k` nearest locations under kernel `K`, ascending by
    /// dissimilarity with ties broken by lower id, written into `out`
    /// (cleared first). With a warm `scratch` and `out`, the scan
    /// performs zero heap allocations.
    ///
    /// Matches [`crate::knn::k_nearest`] output exactly for
    /// [`SquaredEuclidean`] vs [`crate::metric::Euclidean`] (see the
    /// module docs for why the squared ranking preserves order).
    ///
    /// Selection keeps the best `k` candidates in an unsorted slot
    /// table with a cached worst rank: rows are visited in ascending
    /// position, so a later row can only displace a retained one when
    /// its rank is *strictly* smaller than the current worst (equal
    /// ranks lose the position tie-break) — the common reject is a
    /// single float compare with no data-dependent branch history.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, the query length does not match the
    /// index's AP count (same contract as [`crate::knn::k_nearest`]),
    /// or a NaN rank lands among the retained `k` (ranks must be
    /// finite; a NaN outside the retained set is never selected).
    pub fn k_nearest_into<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.queries", 1),
            ("fingerprint.knn.candidates_scanned", self.len() as u64),
        ]);
        let slots = &mut scratch.slots;
        slots.clear();
        slots.reserve(k.min(self.len()));
        // Dispatch to a standalone monomorphic selection per row width:
        // keeping each unrolled scan in its own (deliberately
        // non-inlined) function avoids one seven-armed giant whose
        // register pressure slows every arm.
        match self.ap_count {
            4 => self.k_select::<K, 4>(query, k, slots),
            5 => self.k_select::<K, 5>(query, k, slots),
            6 => self.k_select::<K, 6>(query, k, slots),
            7 => self.k_select::<K, 7>(query, k, slots),
            8 => self.k_select::<K, 8>(query, k, slots),
            _ => self.k_select_dyn::<K>(query, k, slots),
        }
        // One final sort of k entries replaces per-row ordering work;
        // `RankEntry`'s total order panics on NaN ranks here.
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| Neighbor {
            location: self.ids[entry.position as usize],
            dissimilarity: K::finalize(entry.rank),
        }));
        moloc_verify::check_knn_ranks(
            "fingerprint.knn.ranks",
            out.iter().map(|n| (n.location, n.dissimilarity)),
        );
    }

    /// Masked k-NN for queries with missing (non-finite) APs: a
    /// dropped AP contributes nothing to any row's distance instead of
    /// turning every rank into NaN (which would panic the selection
    /// sort) or being misread as "RSS 0 dBm". Partial sums are rescaled
    /// by `ap_count / observed` so dissimilarities stay comparable to
    /// the full-width metric in expectation. Returns the number of
    /// observed (finite) query dimensions; zero means nothing was
    /// observable and every row ranked 0 — callers should treat the
    /// resulting candidates as an uninformative uniform prior.
    ///
    /// This is the degradation path: clean queries must keep using
    /// [`FingerprintIndex::k_nearest_into`], which is bit-identical to
    /// the legacy scan and considerably faster.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the query length does not match the
    /// index's AP count.
    pub fn k_nearest_masked_into(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) -> usize {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.masked_queries", 1),
            ("fingerprint.knn.candidates_scanned", self.len() as u64),
        ]);
        let observed = query.iter().filter(|v| v.is_finite()).count();
        let scale = if observed == 0 {
            0.0
        } else {
            self.ap_count as f64 / observed as f64
        };
        let slots = &mut scratch.slots;
        slots.clear();
        slots.reserve(k.min(self.len()));
        if self.ap_count == 0 {
            select((0..self.len()).map(|_| 0.0), k, slots);
        } else {
            select(
                self.matrix.chunks_exact(self.ap_count).map(|row| {
                    let (sum, _) = masked_euclidean_sq(query, row);
                    sum * scale
                }),
                k,
                slots,
            );
        }
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| Neighbor {
            location: self.ids[entry.position as usize],
            dissimilarity: SquaredEuclidean::finalize(entry.rank),
        }));
        moloc_verify::check_knn_ranks(
            "fingerprint.knn.masked.ranks",
            out.iter().map(|n| (n.location, n.dissimilarity)),
        );
        observed
    }

    /// The single nearest location under the masked metric of
    /// [`FingerprintIndex::k_nearest_masked_into`], ties broken by
    /// lower id. With no observable dimension every row ranks 0 and
    /// the lowest id wins.
    ///
    /// # Panics
    ///
    /// Panics if the query length does not match the index's AP count.
    pub fn nearest_masked(&self, query: &[f64]) -> LocationId {
        self.check_query(query);
        if self.ap_count == 0 {
            return self.ids[0];
        }
        let mut best = 0usize;
        let mut best_rank = f64::INFINITY;
        for (position, row) in self.matrix.chunks_exact(self.ap_count).enumerate() {
            let (rank, _) = masked_euclidean_sq(query, row);
            if rank < best_rank {
                best = position;
                best_rank = rank;
            }
        }
        self.ids[best]
    }

    /// Per-shard top-`k` for the parallel scan path: ranks only the
    /// rows in `rows` and writes up to `k` survivors into `out`
    /// (cleared first), each carrying its **global** row position,
    /// sorted by (rank ascending, position ascending).
    ///
    /// Workers run this over disjoint row ranges concurrently; the
    /// caller combines their outputs with
    /// [`FingerprintIndex::merge_shard_candidates`]. Because the total
    /// order is on pre-`finalize` ranks and global positions — exactly
    /// the order the serial [`FingerprintIndex::k_nearest_into`] scan
    /// selects by — the merged result is identical to the serial scan,
    /// ties included, for any sharding of the rows.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, the query length does not match the
    /// index's AP count, `rows` is out of bounds, or a NaN rank lands
    /// among the retained `k`.
    pub fn shard_candidates<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        rows: Range<usize>,
        scratch: &mut KnnScratch,
        out: &mut Vec<ShardCandidate>,
    ) {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        assert!(
            rows.start <= rows.end && rows.end <= self.len(),
            "shard rows out of bounds"
        );
        let slots = &mut scratch.slots;
        slots.clear();
        slots.reserve(k.min(rows.len()));
        match self.ap_count {
            4 => self.shard_select::<K, 4>(query, k, rows.clone(), slots),
            5 => self.shard_select::<K, 5>(query, k, rows.clone(), slots),
            6 => self.shard_select::<K, 6>(query, k, rows.clone(), slots),
            7 => self.shard_select::<K, 7>(query, k, rows.clone(), slots),
            8 => self.shard_select::<K, 8>(query, k, rows.clone(), slots),
            _ => self.shard_select_dyn::<K>(query, k, rows.clone(), slots),
        }
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| ShardCandidate {
            rank: entry.rank,
            position: entry.position + rows.start as u32,
        }));
    }

    /// Combines per-shard candidate lists into the final top-`k`
    /// neighbor list, bit-identical (order, ties, and finalized
    /// dissimilarities) to a serial
    /// [`FingerprintIndex::k_nearest_into`] over the whole index —
    /// provided the shards partition the rows and each list came from
    /// [`FingerprintIndex::shard_candidates`] with the same query, `k`,
    /// and kernel.
    ///
    /// `candidates` is consumed as a scratch buffer (sorted in place);
    /// `out` receives the merged neighbors, cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or any candidate rank is NaN.
    pub fn merge_shard_candidates<K: MetricKernel>(
        &self,
        k: usize,
        candidates: &mut Vec<ShardCandidate>,
        out: &mut Vec<Neighbor>,
    ) {
        assert!(k > 0, "k must be positive");
        // The global top-k under (rank, position) is contained in the
        // union of per-shard top-k's under the same order, so sorting
        // the union and truncating reproduces the serial selection.
        candidates.sort_unstable_by(|a, b| {
            a.rank
                .partial_cmp(&b.rank)
                .expect("ranks are finite")
                .then_with(|| a.position.cmp(&b.position))
        });
        candidates.truncate(k);
        out.clear();
        out.extend(candidates.iter().map(|c| Neighbor {
            location: self.ids[c.position as usize],
            dissimilarity: K::finalize(c.rank),
        }));
        moloc_verify::check_knn_ranks(
            "fingerprint.knn.sharded.ranks",
            out.iter().map(|n| (n.location, n.dissimilarity)),
        );
    }

    /// [`FingerprintIndex::k_select`] over a row range, positions
    /// relative to `rows.start` (rebased by the caller).
    fn shard_select<K: MetricKernel, const N: usize>(
        &self,
        query: &[f64],
        k: usize,
        rows: Range<usize>,
        slots: &mut Vec<RankEntry>,
    ) {
        let query: &[f64; N] = query.try_into().expect("query length checked");
        let sub = &self.matrix[rows.start * N..rows.end * N];
        select(
            sub.chunks_exact(N).map(|row| {
                let row: &[f64; N] = row.try_into().expect("chunks are N wide");
                K::rank(query, row)
            }),
            k,
            slots,
        );
    }

    /// [`FingerprintIndex::shard_select`] for uncommon row widths (and
    /// the zero-AP degenerate index).
    fn shard_select_dyn<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        rows: Range<usize>,
        slots: &mut Vec<RankEntry>,
    ) {
        if self.ap_count == 0 {
            select(rows.map(|_| K::rank(query, &[])), k, slots);
        } else {
            let sub = &self.matrix[rows.start * self.ap_count..rows.end * self.ap_count];
            select(
                sub.chunks_exact(self.ap_count)
                    .map(|row| K::rank(query, row)),
                k,
                slots,
            );
        }
    }

    /// Convenience wrapper over [`FingerprintIndex::k_nearest_into`]
    /// with the Euclidean kernel and throwaway buffers.
    pub fn k_nearest(&self, query: &Fingerprint, k: usize) -> Vec<Neighbor> {
        let mut scratch = KnnScratch::with_k(k);
        let mut out = Vec::with_capacity(k);
        self.k_nearest_into::<SquaredEuclidean>(query.values(), k, &mut scratch, &mut out);
        out
    }

    /// The finalized dissimilarity of every row to `query`, in row
    /// order, written into `out` (cleared first). Used for full-state
    /// emission models (Viterbi) that need all distances anyway.
    ///
    /// # Panics
    ///
    /// Panics if the query length does not match the index's AP count.
    pub fn rank_all_into<K: MetricKernel>(&self, query: &[f64], out: &mut Vec<f64>) {
        self.check_query(query);
        out.clear();
        out.reserve(self.len());
        self.scan_rows::<K>(query, |_, rank| out.push(K::finalize(rank)));
    }

    /// K-smallest selection over rows of compile-time width `N`.
    fn k_select<K: MetricKernel, const N: usize>(
        &self,
        query: &[f64],
        k: usize,
        slots: &mut Vec<RankEntry>,
    ) {
        let query: &[f64; N] = query.try_into().expect("query length checked");
        select(
            self.matrix.chunks_exact(N).map(|row| {
                let row: &[f64; N] = row.try_into().expect("chunks are N wide");
                K::rank(query, row)
            }),
            k,
            slots,
        );
    }

    /// K-smallest selection for uncommon row widths (and the zero-AP
    /// degenerate index, whose `len()` rows are all empty).
    fn k_select_dyn<K: MetricKernel>(&self, query: &[f64], k: usize, slots: &mut Vec<RankEntry>) {
        if self.ap_count == 0 {
            select((0..self.len()).map(|_| K::rank(query, &[])), k, slots);
        } else {
            select(
                self.matrix
                    .chunks_exact(self.ap_count)
                    .map(|row| K::rank(query, row)),
                k,
                slots,
            );
        }
    }

    /// Applies `f(position, K::rank(query, row))` to every row.
    ///
    /// Common AP counts dispatch to a const-width loop: with the row
    /// (and query) length known at compile time the distance loop fully
    /// unrolls, and the row iterator carries no per-row bounds checks —
    /// together roughly a 3x faster scan than indexing `row(position)`.
    /// The caller must have validated `query` via `check_query`.
    #[inline(always)]
    fn scan_rows<K: MetricKernel>(&self, query: &[f64], mut f: impl FnMut(u32, f64)) {
        match self.ap_count {
            // A zero-AP index still has `len()` (empty) rows.
            0 => (0..self.len()).for_each(|p| f(p as u32, K::rank(query, &[]))),
            4 => self.scan_rows_const::<K, 4>(query, f),
            5 => self.scan_rows_const::<K, 5>(query, f),
            6 => self.scan_rows_const::<K, 6>(query, f),
            7 => self.scan_rows_const::<K, 7>(query, f),
            8 => self.scan_rows_const::<K, 8>(query, f),
            ap => self
                .matrix
                .chunks_exact(ap)
                .enumerate()
                .for_each(|(p, row)| f(p as u32, K::rank(query, row))),
        }
    }

    /// [`FingerprintIndex::scan_rows`] monomorphized on the row width.
    #[inline(always)]
    fn scan_rows_const<K: MetricKernel, const N: usize>(
        &self,
        query: &[f64],
        mut f: impl FnMut(u32, f64),
    ) {
        let query: &[f64; N] = query.try_into().expect("query length checked");
        for (position, row) in self.matrix.chunks_exact(N).enumerate() {
            let row: &[f64; N] = row.try_into().expect("chunks are N wide");
            f(position as u32, K::rank(query, row));
        }
    }

    fn check_query(&self, query: &[f64]) {
        assert_eq!(
            query.len(),
            self.ap_count,
            "query fingerprint length must match database"
        );
    }
}

// ---------------------------------------------------------------------
// Blocked multi-query kernels (DESIGN.md §15).
//
// A `QueryBlock` of Q queries is evaluated against the index in
// cache-blocked Q×L tiles: an L-tile of rows is kept L1-resident while
// register-blocked accumulator lanes walk a Q-tile of queries over it,
// one independent accumulator per query so the compiler vectorizes
// across the query dimension. Per (query, row) the rank is accumulated
// in exactly `euclidean_sq`'s slice order, so the blocked scan is
// bit-identical to the per-query scan. The optional f32 mirror runs
// the same tiling at half the memory bandwidth as a *prefilter*: every
// row within a conservative quantization-error bound of the k-th
// smallest f32 rank survives to an exact f64 rescore under the serial
// comparator, which provably retains the true top-k (contents and tie
// order).
// ---------------------------------------------------------------------

/// Rows per L-tile: 128 rows × 8 APs × 8 B = 8 KiB of matrix plus an
/// 8 KiB tile-rank buffer — together at most half a typical L1d, so
/// one row tile stays resident while every query sub-tile revisits it.
const TILE_ROWS: usize = 128;

/// Query lanes per f64 register tile; the remainder runs narrower
/// const-width tiles so every tile stays a compile-time constant. Eight
/// lanes give the compute phase enough independent accumulators to
/// saturate the FP pipes across vector widths.
const TILE_Q: usize = 8;

/// Query lanes per f32 mirror register tile: 4 queries × a
/// [`MIRROR_CHUNK`]-row accumulator panel fits the vector register
/// file with room for the column loads.
const MIRROR_TILE_Q: usize = 4;

/// Rows per f32 mirror chunk: the accumulator-panel width of the
/// column-major compute kernel. 16 rows × [`MIRROR_TILE_Q`] queries is
/// eight vector registers of accumulators — the panel stays register-
/// resident with room for the column loads.
const MIRROR_CHUNK: usize = 16;

/// Rows per chunk of the single-query mirror scan: one query offers no
/// cross-query parallelism, so the row panel is widened until the
/// accumulator dependency chains stop mattering.
const SINGLE_CHUNK: usize = 64;

/// Lanes of the strided running-minimum sweep that bounds a query's
/// k-th smallest f32 rank (so the mirror path requires
/// `k <= BOUND_LANES`; larger k routes to the f64 lane kernel). 16
/// f32 lanes are two AVX2 registers of pure vertical `min` — the
/// whole bound costs a branchless pass over the rank row plus a
/// 16-element sort.
const BOUND_LANES: usize = 16;

/// One selection step of the blocked scan, replicating [`select`]'s
/// semantics for a single query with caller-held state: fill the first
/// `k` offers unconditionally, then replace the cached worst slot only
/// on a *strictly* smaller rank (equal ranks lose the position
/// tie-break to every retained entry). Offers must arrive in ascending
/// `position` order. `slots` is the query's `k`-wide table; `worst_at`
/// / `worst` are only meaningful once `filled == k`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn offer(
    slots: &mut [RankEntry],
    filled: &mut u32,
    worst_at: &mut u32,
    worst: &mut f64,
    k: usize,
    rank: f64,
    position: u32,
) {
    let f = *filled as usize;
    if f < k {
        slots[f] = RankEntry { rank, position };
        *filled += 1;
        if f + 1 == k {
            let at = worst_slot(&slots[..k]);
            *worst_at = at as u32;
            *worst = slots[at].rank;
        }
    } else if rank < *worst {
        slots[*worst_at as usize] = RankEntry { rank, position };
        let at = worst_slot(&slots[..k]);
        *worst_at = at as u32;
        *worst = slots[at].rank;
    }
}

impl FingerprintIndex {
    /// Multi-query k-NN: ranks every query in `block` against the
    /// index and records each query's `k` nearest (ascending by
    /// dissimilarity, ties to lower id) plus its observed AP count in
    /// `out` (cleared first), in query order.
    ///
    /// **Bit-identical** to calling
    /// [`FingerprintIndex::k_nearest_into`] per clean query and
    /// [`FingerprintIndex::k_nearest_masked_into`] per degraded
    /// (non-finite) query — the blocked lane kernel reproduces the
    /// scalar accumulation order, the f32 mirror only prefilters ahead
    /// of an exact f64 rescore, and masked queries are routed through
    /// the per-query masked path unchanged. Kernels whose
    /// [`MetricKernel::block_compatible`] is false, row widths without
    /// an unrolled lane kernel, and `MOLOC_BLOCK=0` all take the
    /// per-query loop with identical results. With warm `block`,
    /// `scratch`, and `out` the scan performs zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the block's width does not match the
    /// index's AP count.
    pub fn k_nearest_block_into<K: MetricKernel>(
        &self,
        block: &mut crate::block::QueryBlock,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
        out: &mut crate::block::BlockNeighbors,
    ) {
        assert!(k > 0, "k must be positive");
        assert_eq!(
            block.ap_count(),
            self.ap_count,
            "query block width must match database"
        );
        out.clear();
        if block.is_empty() {
            return;
        }
        let q_count = block.len();
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.block_scans", 1),
            ("fingerprint.knn.block_queries", q_count as u64),
        ]);
        let lane_width = (4..=8).contains(&self.ap_count);
        if !(K::block_compatible() && crate::block::block_enabled() && lane_width) {
            // Per-query loop: exactly the calls the caller would have
            // made without a block (which also keeps their counters).
            for q in 0..q_count {
                let query = block.query(q);
                let observed = if block.is_clean(q) {
                    self.k_nearest_into::<K>(query, k, &mut scratch.knn, &mut scratch.tmp_out);
                    self.ap_count
                } else {
                    self.k_nearest_masked_into(query, k, &mut scratch.knn, &mut scratch.tmp_out)
                };
                out.push_query(&scratch.tmp_out, observed);
            }
            return;
        }
        block.seal();
        let block = &*block;
        let clean_count = (0..q_count).filter(|&q| block.is_clean(q)).count();
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.queries", clean_count as u64),
            (
                "fingerprint.knn.candidates_scanned",
                (clean_count * self.len()) as u64,
            ),
        ]);
        // Reset the per-query selection tables. Masked queries get
        // lane slots too (their NaN ranks park harmlessly in the fill
        // phase); their lane results are discarded at emit.
        scratch.slots.clear();
        scratch.slots.resize(
            q_count * k,
            RankEntry {
                rank: 0.0,
                position: 0,
            },
        );
        scratch.filled.clear();
        scratch.filled.resize(q_count, 0);
        scratch.worst_at.clear();
        scratch.worst_at.resize(q_count, 0);
        scratch.worst.clear();
        scratch.worst.resize(q_count, f64::INFINITY);
        let use_mirror = self.mirror.is_some()
            && crate::block::mirror_enabled()
            && block.max_abs() < F32_SAFE_LIMIT
            && k <= BOUND_LANES;
        if use_mirror {
            self.block_pass_f32(block, k, scratch);
            self.block_rescore(block, k, scratch);
        } else {
            self.block_select_f64(block, k, scratch);
        }
        for q in 0..q_count {
            if block.is_clean(q) {
                let slots = &mut scratch.slots[q * k..q * k + scratch.filled[q] as usize];
                slots.sort_unstable();
                scratch.tmp_out.clear();
                scratch.tmp_out.extend(slots.iter().map(|entry| Neighbor {
                    location: self.ids[entry.position as usize],
                    dissimilarity: K::finalize(entry.rank),
                }));
                moloc_verify::check_knn_ranks(
                    "fingerprint.knn.block.ranks",
                    scratch.tmp_out.iter().map(|n| (n.location, n.dissimilarity)),
                );
                out.push_query(&scratch.tmp_out, self.ap_count);
            } else {
                let observed = self.k_nearest_masked_into(
                    block.query(q),
                    k,
                    &mut scratch.knn,
                    &mut scratch.tmp_out,
                );
                out.push_query(&scratch.tmp_out, observed);
            }
        }
    }

    /// The finalized dissimilarity of every row to every query in the
    /// block, written query-major into `out` (cleared first):
    /// `out[q * self.len() + row]`. The blocked counterpart of
    /// [`FingerprintIndex::rank_all_into`] for full-state emission
    /// models (Viterbi), bit-identical to the per-query path; always
    /// ranks in f64 (every value is reported, so the f32 prefilter
    /// cannot help).
    ///
    /// # Panics
    ///
    /// Panics if the block's width does not match the index's AP count.
    pub fn rank_all_block_into<K: MetricKernel>(
        &self,
        block: &mut crate::block::QueryBlock,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            block.ap_count(),
            self.ap_count,
            "query block width must match database"
        );
        let q_count = block.len();
        let rows = self.len();
        out.clear();
        let lane_width = (4..=8).contains(&self.ap_count);
        if !(K::block_compatible() && crate::block::block_enabled() && lane_width) {
            out.reserve(q_count * rows);
            for q in 0..q_count {
                self.scan_rows::<K>(block.query(q), |_, rank| out.push(K::finalize(rank)));
            }
            return;
        }
        block.seal();
        out.resize(q_count * rows, 0.0);
        match self.ap_count {
            4 => self.rank_all_tiles::<K, 4>(block, out),
            5 => self.rank_all_tiles::<K, 5>(block, out),
            6 => self.rank_all_tiles::<K, 6>(block, out),
            7 => self.rank_all_tiles::<K, 7>(block, out),
            8 => self.rank_all_tiles::<K, 8>(block, out),
            _ => unreachable!("lane path requires 4..=8 APs"),
        }
    }

    /// Single-query k-NN through the f32 mirror prefilter: one
    /// half-bandwidth f32 scan ranks every row and keeps the k-th
    /// smallest f32 rank, a second linear pass over the (tiny) f32 rank
    /// buffer collects every row within the quantization-error bound of
    /// it, and the survivors are exactly rescored in f64 under the
    /// serial comparator — **bit-identical** to
    /// [`FingerprintIndex::k_nearest_into`], typically ~1.5–2× faster.
    /// Falls back to `k_nearest_into` (same results) when the kernel is
    /// not [`MetricKernel::block_compatible`], the mirror is absent or
    /// disabled (`MOLOC_MIRROR=0`), the row width has no unrolled
    /// kernel, or the query has non-finite or f32-unsafe values.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the query length does not match the
    /// index's AP count.
    pub fn k_nearest_mirror_into<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut crate::block::BlockScratch,
        out: &mut Vec<Neighbor>,
    ) {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        let safe = K::block_compatible()
            && crate::block::mirror_enabled()
            && self.mirror.is_some()
            && (4..=8).contains(&self.ap_count)
            && k <= BOUND_LANES
            && query
                .iter()
                .all(|v| v.is_finite() && v.abs() < F32_SAFE_LIMIT);
        if !safe {
            self.k_nearest_into::<K>(query, k, &mut scratch.knn, out);
            return;
        }
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.queries", 1),
            ("fingerprint.knn.candidates_scanned", self.len() as u64),
            ("fingerprint.knn.mirror_queries", 1),
        ]);
        let rows = self.len();
        // Grow-only: the scan writes every entry in `[..rows]` before
        // it is read, so warm runs skip the re-zeroing memset entirely.
        if scratch.ranks32.len() < rows {
            scratch.ranks32.resize(rows, 0.0);
        }
        scratch.slots.clear();
        scratch.slots.resize(
            k,
            RankEntry {
                rank: 0.0,
                position: 0,
            },
        );
        match self.ap_count {
            4 => self.mirror_scan_single::<4>(query, scratch),
            5 => self.mirror_scan_single::<5>(query, scratch),
            6 => self.mirror_scan_single::<6>(query, scratch),
            7 => self.mirror_scan_single::<7>(query, scratch),
            8 => self.mirror_scan_single::<8>(query, scratch),
            _ => unreachable!("mirror path requires 4..=8 APs"),
        }
        // Upper bound on the k-th smallest f32 rank (branchless lane
        // minima, no selection table); the exact rescore below
        // re-selects among every row within the quantization band of
        // it, so the bound's slack only admits extra survivors.
        let u = kth_rank_bound(&scratch.ranks32[..rows], k);
        let tau = if u.is_finite() {
            u + 2.0 * self.quantization_bound(query_max_abs(query))
        } else {
            // Fewer than k finite f32 ranks: everything survives.
            f64::INFINITY
        };
        {
            let crate::block::BlockScratch {
                ref ranks32,
                ref mut survivors,
                ..
            } = *scratch;
            survivors.clear();
            // Packed sweep for the survivors; the rounded-up f32 bound
            // can only admit extra rows, which the exact f64 rescore
            // below sorts out.
            for_each_below::<false>(&ranks32[..rows], f32_upper_bound(tau), |r| {
                survivors.push(r as u32);
            });
        }
        moloc_obs::counter_add(
            "fingerprint.knn.mirror_survivors",
            scratch.survivors.len() as u64,
        );
        let slots = &mut scratch.slots[..k];
        let mut filled = 0u32;
        let mut worst_at = 0u32;
        let mut worst = f64::INFINITY;
        for &row in &scratch.survivors {
            let rank = euclidean_sq(query, self.row(row as usize));
            offer(slots, &mut filled, &mut worst_at, &mut worst, k, rank, row);
        }
        let slots = &mut slots[..filled as usize];
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| Neighbor {
            location: self.ids[entry.position as usize],
            dissimilarity: K::finalize(entry.rank),
        }));
        moloc_verify::check_knn_ranks(
            "fingerprint.knn.mirror.ranks",
            out.iter().map(|n| (n.location, n.dissimilarity)),
        );
    }

    /// Conservative bound `E` on `|f32 rank − f64 rank|` for squared-
    /// Euclidean ranks over values bounded by `m` in magnitude.
    /// Per term: quantizing both operands and differencing costs at
    /// most `≈2mε` absolutely, so the squared difference (magnitude
    /// `≤ 4m²`) is off by at most `≈10m²ε`; sequentially accumulating
    /// N terms adds at most `≈2N²m²ε` of summation rounding (partial
    /// sums are `≤ 4Nm²`) — `(10N + 2N²)m²ε` in total, and the
    /// `8·N·(N + 2)` factor keeps a ~3x margin on top of that.
    /// Soundness (never excluding a true top-k row) only needs `E` to
    /// be an over-estimate; slack merely admits extra survivors to the
    /// exact rescore, but too much slack sweeps every near-tie into
    /// the rescore on quantized-grid data.
    fn quantization_bound(&self, query_max_abs: f64) -> f64 {
        let m = self.max_abs.max(query_max_abs);
        let n = self.ap_count as f64;
        8.0 * n * (n + 2.0) * m * m * f64::from(f32::EPSILON)
    }

    /// Dispatches the f64 lane kernel over L-tiles × Q-tiles, feeding
    /// each query's selection table.
    fn block_select_f64(
        &self,
        block: &crate::block::QueryBlock,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
    ) {
        match self.ap_count {
            4 => self.block_select_f64_const::<4>(block, k, scratch),
            5 => self.block_select_f64_const::<5>(block, k, scratch),
            6 => self.block_select_f64_const::<6>(block, k, scratch),
            7 => self.block_select_f64_const::<7>(block, k, scratch),
            8 => self.block_select_f64_const::<8>(block, k, scratch),
            _ => unreachable!("lane path requires 4..=8 APs"),
        }
    }

    fn block_select_f64_const<const N: usize>(
        &self,
        block: &crate::block::QueryBlock,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
    ) {
        let q_count = block.len();
        let rows = self.len();
        let mut base = 0usize;
        while base < rows {
            let end = (base + TILE_ROWS).min(rows);
            let mut q0 = 0usize;
            while q0 < q_count {
                let qt = (q_count - q0).min(TILE_Q);
                match qt {
                    8 => self.lane_tile_f64::<N, 8>(block, q0, base..end, k, scratch),
                    7 => self.lane_tile_f64::<N, 7>(block, q0, base..end, k, scratch),
                    6 => self.lane_tile_f64::<N, 6>(block, q0, base..end, k, scratch),
                    5 => self.lane_tile_f64::<N, 5>(block, q0, base..end, k, scratch),
                    4 => self.lane_tile_f64::<N, 4>(block, q0, base..end, k, scratch),
                    3 => self.lane_tile_f64::<N, 3>(block, q0, base..end, k, scratch),
                    2 => self.lane_tile_f64::<N, 2>(block, q0, base..end, k, scratch),
                    _ => self.lane_tile_f64::<N, 1>(block, q0, base..end, k, scratch),
                }
                q0 += qt;
            }
            base = end;
        }
    }

    /// One Q-tile over one L-tile in f64, in two phases. The *compute*
    /// phase is branchless: per (query, row) the rank is
    /// `Σₐ (queryₐ − rowₐ)²` accumulated in ascending AP order — the
    /// exact operation sequence of [`euclidean_sq`], so ranks (and
    /// therefore selections) are bit-identical to the scalar scan — and
    /// is spilled to the L1-resident tile-rank buffer while a running
    /// per-lane minimum is tracked, with `QT` independent accumulators
    /// so the compiler vectorizes across the query lanes. The
    /// *selection* phase then walks the buffered ranks in ascending row
    /// order, skipping any lane whose tile minimum cannot strictly beat
    /// its cached worst (equal ranks never enter, so the skip is
    /// result-exact) and skipping masked lanes outright (their results
    /// are replaced by the per-query masked scan at emit).
    #[inline(always)]
    fn lane_tile_f64<const N: usize, const QT: usize>(
        &self,
        block: &crate::block::QueryBlock,
        q0: usize,
        rows: Range<usize>,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
    ) {
        let q_count = block.len();
        let lanes = block.lanes();
        let tile = &self.matrix[rows.start * N..rows.end * N];
        let tile_len = rows.end - rows.start;
        let mut qv = [[0.0f64; QT]; N];
        for (a, lane) in qv.iter_mut().enumerate() {
            lane.copy_from_slice(&lanes[a * q_count + q0..a * q_count + q0 + QT]);
        }
        let crate::block::BlockScratch {
            ref mut tile_ranks,
            ref mut slots,
            ref mut filled,
            ref mut worst_at,
            ref mut worst,
            ..
        } = *scratch;
        // Grow-only: the compute kernel overwrites every entry it
        // reads back, so the buffer is never re-zeroed on warm scans.
        if tile_ranks.len() < tile_len * QT {
            tile_ranks.resize(tile_len * QT, 0.0);
        }
        let mut tmin = [f64::INFINITY; QT];
        lane_tile_compute_f64::<N, QT>(tile, &qv, &mut tile_ranks[..tile_len * QT], &mut tmin);
        for q in 0..QT {
            let qi = q0 + q;
            if !block.is_clean(qi) {
                continue;
            }
            let ranks = &tile_ranks[..tile_len * QT];
            if (filled[qi] as usize) < k {
                // Still filling (first tile for any practical k):
                // every rank enters the table serially.
                for i in 0..tile_len {
                    offer(
                        &mut slots[qi * k..(qi + 1) * k],
                        &mut filled[qi],
                        &mut worst_at[qi],
                        &mut worst[qi],
                        k,
                        ranks[i * QT + q],
                        (rows.start + i) as u32,
                    );
                }
                continue;
            }
            if tmin[q] >= worst[qi] {
                continue;
            }
            // Full table: strided sweep of the lane's ranks for the
            // strictly-improving ones, offering in ascending row order
            // exactly like the serial scan. The bound lives in a
            // register and is re-read only after an accepted offer, so
            // the hot loop is one load and one compare; it can only
            // skip ranks the serial scan would reject, and `offer`
            // re-applies the exact test.
            let mut w = worst[qi];
            for i in 0..tile_len {
                let rank = ranks[i * QT + q];
                if rank < w {
                    offer(
                        &mut slots[qi * k..(qi + 1) * k],
                        &mut filled[qi],
                        &mut worst_at[qi],
                        &mut worst[qi],
                        k,
                        rank,
                        (rows.start + i) as u32,
                    );
                    w = worst[qi];
                }
            }
        }
    }

    /// Pass 1 of the mirror path, in two phases. The *compute* phase
    /// runs the branchless f32 column kernel over the quantized mirror:
    /// per chunk of [`MIRROR_CHUNK`] rows and register tile of
    /// [`MIRROR_TILE_Q`] queries, contiguous per-AP columns feed a
    /// rows × queries accumulator panel and every rank lands in the
    /// query-major `ranks32` buffer (row-contiguous stores, since the
    /// panel is already row-major per query). The *selection* phase
    /// then bounds each clean query's k-th smallest f32 rank via
    /// strided lane minima ([`kth_rank_bound`]) — that bound is the
    /// rescore threshold.
    fn block_pass_f32(
        &self,
        block: &crate::block::QueryBlock,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
    ) {
        let q_count = block.len();
        let lanes = block.lanes();
        scratch.lanes32.clear();
        scratch.lanes32.reserve(lanes.len());
        scratch.lanes32.extend(lanes.iter().map(|&v| v as f32));
        let rows = self.len();
        // Grow-only: the column kernel writes every (query, row) rank
        // before the selection and rescore passes read them, so warm
        // scans never pay the re-zeroing memset (256 KB per scan at
        // 2048 x 32).
        if scratch.ranks32.len() < q_count * rows {
            scratch.ranks32.resize(q_count * rows, 0.0);
        }
        {
            let mirror = self
                .mirror
                .as_deref()
                .expect("mirror presence checked by caller");
            let crate::block::BlockScratch {
                ref lanes32,
                ref mut ranks32,
                ..
            } = *scratch;
            let ranks32 = &mut ranks32[..q_count * rows];
            match self.ap_count {
                4 => mirror_pass_f32::<4>(mirror, lanes32, rows, q_count, ranks32),
                5 => mirror_pass_f32::<5>(mirror, lanes32, rows, q_count, ranks32),
                6 => mirror_pass_f32::<6>(mirror, lanes32, rows, q_count, ranks32),
                7 => mirror_pass_f32::<7>(mirror, lanes32, rows, q_count, ranks32),
                8 => mirror_pass_f32::<8>(mirror, lanes32, rows, q_count, ranks32),
                _ => unreachable!("lane path requires 4..=8 APs"),
            }
        }
        self.block_select_f32(block, k, scratch);
    }

    /// Phase 2 of the f32 pass: per clean query, an upper bound on the
    /// k-th smallest f32 rank via [`kth_rank_bound`] — stored in the
    /// query's `worst` slot (`filled` stays 0; the rescore pass builds
    /// the actual table). A bound is enough: the rescore pass
    /// re-selects exactly among every row within the quantization band
    /// of it, so a looser bound only admits extra survivors, never
    /// changes the result. Masked queries are skipped outright; the
    /// emit loop replaces their results with the per-query masked
    /// scan. Requires `k <= BOUND_LANES` (the caller routes larger k
    /// to the f64 lane kernel).
    fn block_select_f32(
        &self,
        block: &crate::block::QueryBlock,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
    ) {
        let rows = self.len();
        let crate::block::BlockScratch {
            ref ranks32,
            ref mut filled,
            ref mut worst,
            ..
        } = *scratch;
        for q in 0..block.len() {
            if !block.is_clean(q) {
                continue;
            }
            worst[q] = kth_rank_bound(&ranks32[q * rows..(q + 1) * rows], k);
            filled[q] = 0;
        }
    }

    /// Pass 2 of the mirror path: per clean query, every row whose f32
    /// rank is within `2E` of the selection phase's bound `u` on the
    /// k-th smallest f32 rank survives, and the survivors are rescored
    /// with the exact f64 kernel under the serial (rank, position)
    /// comparator, overwriting the query's slot table with the final
    /// selection. Soundness: pointwise `|r32 − r64| ≤ E` puts every
    /// true top-k row's f32 rank at or below `w32 + 2E ≤ u + 2E`
    /// (where `w32` is the exact k-th smallest f32 rank), so the
    /// survivor set provably contains the true top-k and the rescore's
    /// selection among it is the global one.
    fn block_rescore(
        &self,
        block: &crate::block::QueryBlock,
        k: usize,
        scratch: &mut crate::block::BlockScratch,
    ) {
        let rows = self.len();
        let e = self.quantization_bound(block.max_abs());
        let mut survivors_total = 0u64;
        let crate::block::BlockScratch {
            ref ranks32,
            ref mut survivors,
            ref mut slots,
            ref mut filled,
            ref mut worst,
            ..
        } = *scratch;
        for q in 0..block.len() {
            if !block.is_clean(q) {
                continue;
            }
            // An infinite bound means fewer than k finite f32 ranks
            // existed (tiny surveys): everything is a survivor anyway.
            let tau = if worst[q].is_finite() {
                worst[q] + 2.0 * e
            } else {
                f64::INFINITY
            };
            survivors.clear();
            // Packed sweep of the query's rank row: survivors are
            // sparse, so almost every 8-lane compare is a zero-mask
            // skip. The rounded-up f32 bound can only admit extra
            // rows, which the exact f64 rescore below sorts out.
            let ranks = &ranks32[q * rows..(q + 1) * rows];
            for_each_below::<false>(ranks, f32_upper_bound(tau), |r| {
                survivors.push(r as u32);
            });
            survivors_total += survivors.len() as u64;
            let query = block.query(q);
            let slots = &mut slots[q * k..(q + 1) * k];
            let mut q_filled = 0u32;
            let mut worst_at = 0u32;
            let mut q_worst = f64::INFINITY;
            for &row in survivors.iter() {
                let rank = euclidean_sq(query, self.row(row as usize));
                offer(
                    slots,
                    &mut q_filled,
                    &mut worst_at,
                    &mut q_worst,
                    k,
                    rank,
                    row,
                );
            }
            filled[q] = q_filled;
        }
        moloc_obs::counter_add("fingerprint.knn.mirror_survivors", survivors_total);
    }

    /// Pass 1 of the single-query mirror path: the branchless f32
    /// column kernel over [`SINGLE_CHUNK`]-row panels, recording every
    /// rank (accumulated per row in ascending AP order, exactly
    /// [`crate::metric::euclidean_sq_f32`]'s sequence) for the
    /// selection and survivor sweeps.
    fn mirror_scan_single<const N: usize>(
        &self,
        query: &[f64],
        scratch: &mut crate::block::BlockScratch,
    ) {
        let mirror = self
            .mirror
            .as_deref()
            .expect("mirror presence checked by caller");
        let rows = self.len();
        let mut q32 = [0.0f32; N];
        for (a, v) in q32.iter_mut().enumerate() {
            *v = query[a] as f32;
        }
        mirror_single_compute::<N>(mirror, rows, &q32, &mut scratch.ranks32[..rows]);
    }

    /// Q-tiled all-rows ranking: writes `K::finalize` of every (query,
    /// row) rank into `out[q * rows + row]`, accumulating each rank in
    /// [`euclidean_sq`]'s order (bit-identical to the per-query scan).
    fn rank_all_tiles<K: MetricKernel, const N: usize>(
        &self,
        block: &crate::block::QueryBlock,
        out: &mut [f64],
    ) {
        let q_count = block.len();
        let lanes = block.lanes();
        let rows = self.len();
        let mut base = 0usize;
        while base < rows {
            let end = (base + TILE_ROWS).min(rows);
            let mut q0 = 0usize;
            while q0 < q_count {
                let qt = (q_count - q0).min(TILE_Q);
                match qt {
                    8 => rank_all_tile::<K, N, 8>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    7 => rank_all_tile::<K, N, 7>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    6 => rank_all_tile::<K, N, 6>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    5 => rank_all_tile::<K, N, 5>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    4 => rank_all_tile::<K, N, 4>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    3 => rank_all_tile::<K, N, 3>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    2 => rank_all_tile::<K, N, 2>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                    _ => rank_all_tile::<K, N, 1>(
                        &self.matrix,
                        lanes,
                        rows,
                        q_count,
                        q0,
                        base..end,
                        out,
                    ),
                }
                q0 += qt;
            }
            base = end;
        }
    }
}

/// `true` when the host supports AVX2 and the wide recompilations of
/// the tile kernels below may be entered. `std`'s detection macro
/// caches the CPUID result in an atomic, so the per-tile cost is one
/// relaxed load.
#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The smallest f32 upper bound of `x`: the returned `b` satisfies
/// `f64::from(b) >= x`, so an f32 value `v` with `f64::from(v) < x`
/// (resp. `<= x`) always satisfies `v < b` (resp. `v <= b`). Used to
/// run candidate prefilters as pure f32 comparisons: the f32 sweep may
/// admit a few extra candidates (rounded-up bound), never lose one.
#[inline]
fn f32_upper_bound(x: f64) -> f32 {
    let b = x as f32;
    if f64::from(b) >= x || b.is_infinite() {
        b
    } else {
        // `as f32` rounded down; bump one ULP. Ranks are nonnegative
        // finite, for which the bit increment is exactly `next_up`.
        f32::from_bits(b.to_bits() + 1)
    }
}

/// Calls `f(i)` for every `i` with `vals[i] < bound` (`STRICT`) or
/// `vals[i] <= bound` (`!STRICT`), in ascending order. On AVX2 hosts
/// the predicate runs as a packed compare + movemask sweep, eight
/// lanes per iteration; the visited set is exactly the scalar
/// predicate's (comparison only, no arithmetic; NaN compares false in
/// both forms). This is the workhorse of the selection and survivor
/// passes: candidates are sparse, so almost every iteration is a
/// Upper bound on the k-th smallest value of `vals` (`k` at most
/// [`BOUND_LANES`]), as an exact `f64`: [`BOUND_LANES`] strided
/// running minima over the buffer — pure vertical `min`, no branches,
/// no bookkeeping — then the k-th smallest of the lane minima.
///
/// Soundness: each finite lane minimum is an actual value of `vals`
/// at a distinct position, so if the k-th smallest lane minimum `u`
/// is finite, at least k distinct values are `<= u` and the true k-th
/// smallest is too. (An infinite `u` — fewer than k nonempty lanes —
/// is the trivial bound; callers rescore everything.) The bound is
/// near-exact in practice: a lane minimum is already deep in the left
/// tail of its 1/[`BOUND_LANES`] slice of the buffer, so the k-th
/// smallest of them sits within a few ranks of the true k-th.
///
/// NaNs (masked-query fill ranks never reach here, but belt and
/// braces) lose every `<` comparison, so they never displace a lane
/// minimum, and `total_cmp` sorts them last.
fn kth_rank_bound(vals: &[f32], k: usize) -> f64 {
    debug_assert!((1..=BOUND_LANES).contains(&k));
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support verified at runtime.
        return unsafe { kth_rank_bound_avx2(vals, k) };
    }
    kth_rank_bound_generic(vals, k)
}

#[inline(always)]
fn kth_rank_bound_generic(vals: &[f32], k: usize) -> f64 {
    let mut lanes = [f32::INFINITY; BOUND_LANES];
    let mut chunks = vals.chunks_exact(BOUND_LANES);
    for chunk in &mut chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane = if v < *lane { v } else { *lane };
        }
    }
    for (lane, &v) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane = if v < *lane { v } else { *lane };
    }
    lanes.sort_unstable_by(f32::total_cmp);
    f64::from(lanes[k - 1])
}

/// AVX2 build of [`kth_rank_bound_generic`]: the lane minima are two
/// `vminps` registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kth_rank_bound_avx2(vals: &[f32], k: usize) -> f64 {
    kth_rank_bound_generic(vals, k)
}

/// Calls `f(i)` for every `i` with `vals[i] < bound` (`STRICT`) or
/// `vals[i] <= bound` (`!STRICT`), in ascending order. On AVX2 hosts
/// the predicate runs as a packed compare + movemask sweep, eight
/// lanes per iteration; the visited set is exactly the scalar
/// predicate's (comparison only, no arithmetic; NaN compares false in
/// both forms). This is the workhorse of the selection and survivor
/// passes: candidates are sparse, so almost every iteration is a
/// zero-mask skip.
#[inline]
fn for_each_below<const STRICT: bool>(vals: &[f32], bound: f32, f: impl FnMut(usize)) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by runtime AVX2 detection above.
        return unsafe { for_each_below_avx2::<STRICT>(vals, bound, f) };
    }
    for_each_below_generic::<STRICT>(vals, bound, f)
}

#[inline(always)]
fn for_each_below_generic<const STRICT: bool>(vals: &[f32], bound: f32, mut f: impl FnMut(usize)) {
    for (i, &v) in vals.iter().enumerate() {
        if (STRICT && v < bound) || (!STRICT && v <= bound) {
            f(i);
        }
    }
}

/// AVX2 compare + movemask sweep; identical visited set to
/// [`for_each_below_generic`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn for_each_below_avx2<const STRICT: bool>(
    vals: &[f32],
    bound: f32,
    mut f: impl FnMut(usize),
) {
    use std::arch::x86_64::{
        _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_set1_ps, _CMP_LE_OQ, _CMP_LT_OQ,
    };
    let b = _mm256_set1_ps(bound);
    // Ordered quiet compares: false on NaN, like the scalar `<`.
    let cmp = |v| {
        if STRICT {
            _mm256_cmp_ps::<_CMP_LT_OQ>(v, b)
        } else {
            _mm256_cmp_ps::<_CMP_LE_OQ>(v, b)
        }
    };
    let mut i = 0usize;
    // Two vectors per iteration, fused into one 16-bit mask: bit order
    // equals index order, so visits stay ascending.
    while i + 16 <= vals.len() {
        // SAFETY: `i + 16 <= vals.len()` bounds both unaligned loads.
        let (v0, v1) = unsafe {
            (
                _mm256_loadu_ps(vals.as_ptr().add(i)),
                _mm256_loadu_ps(vals.as_ptr().add(i + 8)),
            )
        };
        let m0 = _mm256_movemask_ps(cmp(v0)) as u32 & 0xff;
        let m1 = _mm256_movemask_ps(cmp(v1)) as u32 & 0xff;
        let mut mask = m0 | (m1 << 8);
        while mask != 0 {
            f(i + mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
        i += 16;
    }
    if i + 8 <= vals.len() {
        // SAFETY: `i + 8 <= vals.len()` bounds the unaligned load.
        let v = unsafe { _mm256_loadu_ps(vals.as_ptr().add(i)) };
        let mut mask = _mm256_movemask_ps(cmp(v)) as u32 & 0xff;
        while mask != 0 {
            f(i + mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
        i += 8;
    }
    for_each_below_generic::<STRICT>(&vals[i..], bound, |j| f(i + j));
}

/// Declares one multiversioned tile kernel: `$name` dispatches at
/// runtime between the baseline-target compilation of `$generic` and
/// an AVX2 recompilation of the same `#[inline(always)]` body.
///
/// Bit-exactness across the two compilations is structural: each
/// (query, row) rank is a *sequential* accumulation over the AP axis —
/// SIMD width only changes how many independent accumulators advance
/// per instruction, never the order of operations within one — and
/// FMA is deliberately **not** enabled, so no contraction can alter a
/// single rounding. IEEE 754 then guarantees identical bits from
/// identical operation sequences, which is what the determinism digest
/// and the cross-path proptests rely on.
macro_rules! multiversion_kernel {
    (
        $(#[$doc:meta])*
        fn $name:ident / $avx2:ident / $generic:ident
        <$(const $cp:ident: usize),+>
        ($($arg:ident: $ty:ty),* $(,)?)
    ) => {
        $(#[$doc])*
        #[inline]
        #[allow(clippy::too_many_arguments)]
        fn $name<$(const $cp: usize),+>($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                // SAFETY: guarded by runtime AVX2 detection above.
                return unsafe { $avx2::<$($cp),+>($($arg),*) };
            }
            $generic::<$($cp),+>($($arg),*)
        }

        /// AVX2 recompilation of the `#[inline(always)]` kernel body;
        /// see [`multiversion_kernel`] for the bit-exactness argument.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx2<$(const $cp: usize),+>($($arg: $ty),*) {
            $generic::<$($cp),+>($($arg),*)
        }
    };
}

multiversion_kernel! {
    /// Compute phase of [`FingerprintIndex::lane_tile_f64`]: ranks one
    /// L-tile × Q-tile into `tile_ranks[i * QT + q]` and tracks each
    /// lane's tile minimum. Branchless — no selection state here.
    fn lane_tile_compute_f64 / lane_tile_compute_f64_avx2 / lane_tile_compute_f64_generic
    <const N: usize, const QT: usize>(
        tile: &[f64],
        qv: &[[f64; QT]; N],
        tile_ranks: &mut [f64],
        tmin: &mut [f64; QT],
    )
}

#[inline(always)]
fn lane_tile_compute_f64_generic<const N: usize, const QT: usize>(
    tile: &[f64],
    qv: &[[f64; QT]; N],
    tile_ranks: &mut [f64],
    tmin: &mut [f64; QT],
) {
    for (i, row) in tile.chunks_exact(N).enumerate() {
        let mut acc = [0.0f64; QT];
        for (a, qa) in qv.iter().enumerate() {
            let rv = row[a];
            for q in 0..QT {
                let d = qa[q] - rv;
                acc[q] += d * d;
            }
        }
        // Interleaved stores (`[i * QT + q]`): one row's QT ranks land
        // in a single contiguous burst, and the q-loop vectorizes
        // across the accumulator panel — lane-major stores (strided by
        // tile length) defeat that and cost ~3x on the whole kernel.
        // The selection phase walks the buffer strided instead.
        let out = &mut tile_ranks[i * QT..(i + 1) * QT];
        for q in 0..QT {
            out[q] = acc[q];
            // `<` selection (not `f64::min`): a NaN rank from a masked
            // lane can never become the minimum.
            tmin[q] = if acc[q] < tmin[q] { acc[q] } else { tmin[q] };
        }
    }
}

multiversion_kernel! {
    /// Full f32 compute pass over the column-major mirror: Q-tile
    /// outer (the query lanes are hoisted into registers once per
    /// tile), [`MIRROR_CHUNK`]-row panels inner — the mirror is half
    /// the f64 matrix and typically cache-resident, so re-streaming it
    /// per query tile is cheap. Each row's rank is accumulated in
    /// ascending AP order (bit-identical to
    /// [`crate::metric::euclidean_sq_f32`]) and spilled
    /// row-contiguously into the query-major `ranks32` buffer.
    /// Branchless — no selection state is touched here.
    fn mirror_pass_f32 / mirror_pass_f32_avx2 / mirror_pass_f32_generic
    <const N: usize>(
        mirror: &[f32],
        lanes32: &[f32],
        rows: usize,
        q_count: usize,
        ranks32: &mut [f32],
    )
}

#[inline(always)]
fn mirror_pass_f32_generic<const N: usize>(
    mirror: &[f32],
    lanes32: &[f32],
    rows: usize,
    q_count: usize,
    ranks32: &mut [f32],
) {
    let main = rows - rows % MIRROR_CHUNK;
    let mut q0 = 0usize;
    while q0 < q_count {
        let qt = (q_count - q0).min(MIRROR_TILE_Q);
        match qt {
            4 => mirror_lane_f32::<N, 4>(mirror, lanes32, rows, q_count, q0, main, ranks32),
            3 => mirror_lane_f32::<N, 3>(mirror, lanes32, rows, q_count, q0, main, ranks32),
            2 => mirror_lane_f32::<N, 2>(mirror, lanes32, rows, q_count, q0, main, ranks32),
            _ => mirror_lane_f32::<N, 1>(mirror, lanes32, rows, q_count, q0, main, ranks32),
        }
        q0 += qt;
    }
    // Scalar tail for the last partial chunk.
    if main < rows {
        for q in 0..q_count {
            for r in main..rows {
                let mut acc = 0.0f32;
                for a in 0..N {
                    let d = lanes32[a * q_count + q] - mirror[a * rows + r];
                    acc += d * d;
                }
                ranks32[q * rows + r] = acc;
            }
        }
    }
}

/// One query tile's sweep over every full [`MIRROR_CHUNK`]-row panel
/// of the column-major mirror (the partial tail panel is handled by
/// the caller). The accumulator panel is read and written strictly
/// elementwise — its address never escapes into a call or memcpy — so
/// the compiler keeps the whole panel in vector registers instead of
/// round-tripping every accumulate through the stack.
#[inline(always)]
fn mirror_lane_f32<const N: usize, const QT: usize>(
    mirror: &[f32],
    lanes32: &[f32],
    rows: usize,
    q_count: usize,
    q0: usize,
    main: usize,
    ranks32: &mut [f32],
) {
    let mut qv = [[0.0f32; QT]; N];
    for (a, lane) in qv.iter_mut().enumerate() {
        lane.copy_from_slice(&lanes32[a * q_count + q0..a * q_count + q0 + QT]);
    }
    let mut base = 0usize;
    while base < main {
        let mut acc = [[0.0f32; MIRROR_CHUNK]; QT];
        for (a, qa) in qv.iter().enumerate() {
            let col: &[f32; MIRROR_CHUNK] = mirror[a * rows + base..a * rows + base + MIRROR_CHUNK]
                .try_into()
                .expect("full chunk");
            for (q, accq) in acc.iter_mut().enumerate() {
                let qaq = qa[q];
                for r in 0..MIRROR_CHUNK {
                    let d = qaq - col[r];
                    accq[r] += d * d;
                }
            }
        }
        for (q, accq) in acc.iter().enumerate() {
            let out = &mut ranks32[(q0 + q) * rows + base..][..MIRROR_CHUNK];
            // NOT `copy_from_slice`: that takes the accumulator
            // panel's address, which forces it onto the stack and
            // turns the whole kernel into load-op-store chains;
            // elementwise stores keep it in vector registers.
            #[allow(clippy::manual_memcpy)]
            for r in 0..MIRROR_CHUNK {
                out[r] = accq[r];
            }
        }
        base += MIRROR_CHUNK;
    }
}

multiversion_kernel! {
    /// Compute pass of the single-query mirror scan: ranks every row of
    /// the column-major f32 mirror over [`SINGLE_CHUNK`]-row panels
    /// (each row's rank accumulated in ascending AP order, exactly
    /// [`crate::metric::euclidean_sq_f32`]'s sequence) into `ranks32`.
    fn mirror_single_compute / mirror_single_compute_avx2 / mirror_single_compute_generic
    <const N: usize>(
        mirror: &[f32],
        rows: usize,
        q32: &[f32; N],
        ranks32: &mut [f32],
    )
}

#[inline(always)]
fn mirror_single_compute_generic<const N: usize>(
    mirror: &[f32],
    rows: usize,
    q32: &[f32; N],
    ranks32: &mut [f32],
) {
    let main = rows - rows % SINGLE_CHUNK;
    let mut base = 0usize;
    while base < main {
        // Elementwise panel stores, like the blocked kernel: the
        // accumulator's address never escapes, so it stays in vector
        // registers.
        let mut acc = [0.0f32; SINGLE_CHUNK];
        for (a, &qa) in q32.iter().enumerate() {
            let col: &[f32; SINGLE_CHUNK] = mirror[a * rows + base..a * rows + base + SINGLE_CHUNK]
                .try_into()
                .expect("full chunk");
            for r in 0..SINGLE_CHUNK {
                let d = qa - col[r];
                acc[r] += d * d;
            }
        }
        let out = &mut ranks32[base..base + SINGLE_CHUNK];
        // NOT `copy_from_slice`: see `mirror_lane_f32` — the panel
        // must stay address-free to live in registers.
        #[allow(clippy::manual_memcpy)]
        for r in 0..SINGLE_CHUNK {
            out[r] = acc[r];
        }
        base += SINGLE_CHUNK;
    }
    if main < rows {
        for r in main..rows {
            let mut acc = 0.0f32;
            for (a, &qa) in q32.iter().enumerate() {
                let d = qa - mirror[a * rows + r];
                acc += d * d;
            }
            ranks32[r] = acc;
        }
    }
}

/// One Q-tile over one L-tile of the all-rows ranking; runtime-
/// dispatched by hand (the kernel is additionally generic over the
/// metric, which [`multiversion_kernel`] does not cover). The same
/// bit-exactness argument applies: AVX2 only widens the lanes.
#[inline]
#[allow(clippy::too_many_arguments)]
fn rank_all_tile<K: MetricKernel, const N: usize, const QT: usize>(
    matrix: &[f64],
    lanes: &[f64],
    total_rows: usize,
    q_count: usize,
    q0: usize,
    rows: Range<usize>,
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by runtime AVX2 detection above.
        return unsafe {
            rank_all_tile_avx2::<K, N, QT>(matrix, lanes, total_rows, q_count, q0, rows, out)
        };
    }
    rank_all_tile_generic::<K, N, QT>(matrix, lanes, total_rows, q_count, q0, rows, out)
}

/// AVX2 recompilation of the all-rows tile kernel body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn rank_all_tile_avx2<K: MetricKernel, const N: usize, const QT: usize>(
    matrix: &[f64],
    lanes: &[f64],
    total_rows: usize,
    q_count: usize,
    q0: usize,
    rows: Range<usize>,
    out: &mut [f64],
) {
    rank_all_tile_generic::<K, N, QT>(matrix, lanes, total_rows, q_count, q0, rows, out)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rank_all_tile_generic<K: MetricKernel, const N: usize, const QT: usize>(
    matrix: &[f64],
    lanes: &[f64],
    total_rows: usize,
    q_count: usize,
    q0: usize,
    rows: Range<usize>,
    out: &mut [f64],
) {
    let tile = &matrix[rows.start * N..rows.end * N];
    let mut qv = [[0.0f64; QT]; N];
    for (a, lane) in qv.iter_mut().enumerate() {
        lane.copy_from_slice(&lanes[a * q_count + q0..a * q_count + q0 + QT]);
    }
    for (i, row) in tile.chunks_exact(N).enumerate() {
        let mut acc = [0.0f64; QT];
        for a in 0..N {
            let rv = row[a];
            for q in 0..QT {
                let d = qv[a][q] - rv;
                acc[q] += d * d;
            }
        }
        for q in 0..QT {
            out[(q0 + q) * total_rows + rows.start + i] = K::finalize(acc[q]);
        }
    }
}

/// Largest |value| of a (finite) query; non-finite entries are skipped
/// so masked queries still get a meaningful bound.
fn query_max_abs(query: &[f64]) -> f64 {
    query
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::k_nearest;
    use crate::metric::{Cosine, Dissimilarity, Euclidean, Manhattan};

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(7), Fingerprint::new(vec![-70.0, -40.0])),
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(3), Fingerprint::new(vec![-50.0, -60.0])),
        ])
        .unwrap()
    }

    #[test]
    fn layout_is_row_major_in_id_order() {
        let index = FingerprintIndex::build(&db());
        assert_eq!(index.len(), 3);
        assert_eq!(index.ap_count(), 2);
        assert_eq!(index.ids(), &[l(1), l(3), l(7)]);
        assert_eq!(index.row(0), &[-40.0, -70.0]);
        assert_eq!(index.row(2), &[-70.0, -40.0]);
        assert_eq!(index.sq_norm(0), 40.0 * 40.0 + 70.0 * 70.0);
        assert_eq!(index.position_of(l(3)), Some(1));
        assert_eq!(index.position_of(l(2)), None);
    }

    #[test]
    fn nearest_matches_k1_legacy_path() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-48.0, -61.0]);
        let legacy = k_nearest(&database, &q, 1, &Euclidean)[0].location;
        assert_eq!(index.nearest(q.values()), legacy);
    }

    #[test]
    fn k_nearest_matches_legacy_order_and_bits() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        for k in 1..=4 {
            let legacy = k_nearest(&database, &q, k, &Euclidean);
            let fast = index.k_nearest(&q, k);
            assert_eq!(fast.len(), legacy.len());
            for (a, b) in fast.iter().zip(&legacy) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
            }
        }
    }

    #[test]
    fn ties_broken_by_lower_id() {
        let tied = FingerprintDb::from_fingerprints(vec![
            (l(5), Fingerprint::new(vec![-40.0])),
            (l(2), Fingerprint::new(vec![-40.0])),
        ])
        .unwrap();
        let index = FingerprintIndex::build(&tied);
        let q = Fingerprint::new(vec![-40.0]);
        assert_eq!(index.nearest(q.values()), l(2));
        let nn = index.k_nearest(&q, 2);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[1].location, l(5));
    }

    #[test]
    fn scratch_reuse_is_stable_across_queries() {
        let index = FingerprintIndex::build(&db());
        let mut scratch = KnnScratch::with_k(2);
        let mut out = Vec::with_capacity(2);
        let q1 = Fingerprint::new(vec![-41.0, -69.0]);
        let q2 = Fingerprint::new(vec![-69.0, -41.0]);
        index.k_nearest_into::<SquaredEuclidean>(q1.values(), 2, &mut scratch, &mut out);
        let first: Vec<_> = out.clone();
        index.k_nearest_into::<SquaredEuclidean>(q2.values(), 2, &mut scratch, &mut out);
        assert_eq!(out[0].location, l(7));
        index.k_nearest_into::<SquaredEuclidean>(q1.values(), 2, &mut scratch, &mut out);
        assert_eq!(out, first);
    }

    #[test]
    fn manhattan_and_cosine_kernels_match_trait_metrics() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-45.0, -63.0]);
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        index.k_nearest_into::<ManhattanKernel>(q.values(), 3, &mut scratch, &mut out);
        for (a, b) in out.iter().zip(&k_nearest(&database, &q, 3, &Manhattan)) {
            assert_eq!(a.location, b.location);
            assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
        index.k_nearest_into::<CosineKernel>(q.values(), 3, &mut scratch, &mut out);
        for (a, b) in out.iter().zip(&k_nearest(&database, &q, 3, &Cosine)) {
            assert_eq!(a.location, b.location);
            assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
    }

    #[test]
    fn rank_all_matches_per_row_dissimilarity() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-44.0, -66.0]);
        let mut out = Vec::new();
        index.rank_all_into::<SquaredEuclidean>(q.values(), &mut out);
        assert_eq!(out.len(), 3);
        for (position, (_, fp)) in database.iter().enumerate() {
            assert_eq!(
                out[position].to_bits(),
                Euclidean.dissimilarity(&q, fp).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let index = FingerprintIndex::build(&db());
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        index.k_nearest_into::<SquaredEuclidean>(&[-40.0, -70.0], 0, &mut scratch, &mut out);
    }

    /// A 6-AP survey wide enough to exercise the lane kernels' tile
    /// remainders (the deterministic value pattern creates ties).
    fn wide_db(locations: u32) -> FingerprintDb {
        FingerprintDb::from_fingerprints(
            (0..locations)
                .map(|i| {
                    let values = (0..6)
                        .map(|a| -40.0 - f64::from((i * 7 + a * 13) % 23))
                        .collect();
                    (l(i + 1), Fingerprint::new(values))
                })
                .collect(),
        )
        .unwrap()
    }

    fn block_queries(count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|q| {
                (0..6)
                    .map(|a| -41.0 - f64::from(((q * 11 + a * 5) % 19) as u32))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn block_scan_matches_per_query_scan_bits() {
        let index = FingerprintIndex::build(&wide_db(300));
        assert!(index.has_mirror());
        let mut block = crate::block::QueryBlock::new(6);
        let queries = block_queries(9);
        for q in &queries {
            block.push(q);
        }
        let mut scratch = crate::block::BlockScratch::new();
        let mut out = crate::block::BlockNeighbors::new();
        let mut knn = KnnScratch::new();
        let mut serial = Vec::new();
        for k in [1, 3, 8, 500] {
            index.k_nearest_block_into::<SquaredEuclidean>(&mut block, k, &mut scratch, &mut out);
            assert_eq!(out.query_count(), queries.len());
            for (q, query) in queries.iter().enumerate() {
                index.k_nearest_into::<SquaredEuclidean>(query, k, &mut knn, &mut serial);
                let blocked = out.query(q);
                assert_eq!(blocked.len(), serial.len());
                assert_eq!(out.observed(q), 6);
                for (a, b) in blocked.iter().zip(&serial) {
                    assert_eq!(a.location, b.location);
                    assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
                }
            }
        }
    }

    #[test]
    fn block_scan_routes_masked_queries_through_masked_path() {
        let index = FingerprintIndex::build(&wide_db(64));
        let mut block = crate::block::QueryBlock::new(6);
        let clean = block_queries(1).remove(0);
        let mut masked = clean.clone();
        masked[2] = f64::NAN;
        masked[5] = f64::INFINITY;
        block.push(&clean);
        block.push(&masked);
        let mut scratch = crate::block::BlockScratch::new();
        let mut out = crate::block::BlockNeighbors::new();
        index.k_nearest_block_into::<SquaredEuclidean>(&mut block, 5, &mut scratch, &mut out);
        let mut knn = KnnScratch::new();
        let mut serial = Vec::new();
        let observed = index.k_nearest_masked_into(&masked, 5, &mut knn, &mut serial);
        assert_eq!(out.observed(1), observed);
        assert_eq!(observed, 4);
        for (a, b) in out.query(1).iter().zip(&serial) {
            assert_eq!(a.location, b.location);
            assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
    }

    #[test]
    fn block_scan_without_mirror_matches_per_query_scan() {
        // Toggling the mirror must not change a single bit.
        let index = FingerprintIndex::build(&wide_db(90));
        let queries = block_queries(5);
        let mut block = crate::block::QueryBlock::new(6);
        for q in &queries {
            block.push(q);
        }
        let mut scratch = crate::block::BlockScratch::new();
        let mut out = crate::block::BlockNeighbors::new();
        crate::block::set_mirror_override(Some(false));
        index.k_nearest_block_into::<SquaredEuclidean>(&mut block, 4, &mut scratch, &mut out);
        crate::block::set_mirror_override(None);
        let mut knn = KnnScratch::new();
        let mut serial = Vec::new();
        for (q, query) in queries.iter().enumerate() {
            index.k_nearest_into::<SquaredEuclidean>(query, 4, &mut knn, &mut serial);
            for (a, b) in out.query(q).iter().zip(&serial) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
            }
        }
    }

    #[test]
    fn block_scan_handles_non_lane_widths_via_fallback() {
        // 2-AP index: no unrolled lane kernel, per-query fallback.
        let index = FingerprintIndex::build(&db());
        let mut block = crate::block::QueryBlock::new(2);
        block.push(&[-41.0, -69.0]);
        block.push(&[-69.0, -41.0]);
        let mut scratch = crate::block::BlockScratch::new();
        let mut out = crate::block::BlockNeighbors::new();
        index.k_nearest_block_into::<SquaredEuclidean>(&mut block, 2, &mut scratch, &mut out);
        assert_eq!(out.query(0)[0].location, l(1));
        assert_eq!(out.query(1)[0].location, l(7));
    }

    #[test]
    fn non_block_kernels_loop_per_query_with_identical_results() {
        let index = FingerprintIndex::build(&wide_db(40));
        let queries = block_queries(3);
        let mut block = crate::block::QueryBlock::new(6);
        for q in &queries {
            block.push(q);
        }
        let mut scratch = crate::block::BlockScratch::new();
        let mut out = crate::block::BlockNeighbors::new();
        index.k_nearest_block_into::<ManhattanKernel>(&mut block, 3, &mut scratch, &mut out);
        let mut knn = KnnScratch::new();
        let mut serial = Vec::new();
        for (q, query) in queries.iter().enumerate() {
            index.k_nearest_into::<ManhattanKernel>(query, 3, &mut knn, &mut serial);
            for (a, b) in out.query(q).iter().zip(&serial) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
            }
        }
    }

    #[test]
    fn rank_all_block_matches_per_query_rank_all() {
        let index = FingerprintIndex::build(&wide_db(70));
        let queries = block_queries(5);
        let mut block = crate::block::QueryBlock::new(6);
        for q in &queries {
            block.push(q);
        }
        let mut flat = Vec::new();
        index.rank_all_block_into::<SquaredEuclidean>(&mut block, &mut flat);
        assert_eq!(flat.len(), queries.len() * index.len());
        let mut serial = Vec::new();
        for (q, query) in queries.iter().enumerate() {
            index.rank_all_into::<SquaredEuclidean>(query, &mut serial);
            for (row, expect) in serial.iter().enumerate() {
                assert_eq!(flat[q * index.len() + row].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn mirror_single_query_matches_serial_scan_bits() {
        let index = FingerprintIndex::build(&wide_db(257));
        let query = block_queries(1).remove(0);
        let mut scratch = crate::block::BlockScratch::new();
        let mut knn = KnnScratch::new();
        let (mut fast, mut serial) = (Vec::new(), Vec::new());
        for k in [1, 8, 300] {
            index.k_nearest_mirror_into::<SquaredEuclidean>(&query, k, &mut scratch, &mut fast);
            index.k_nearest_into::<SquaredEuclidean>(&query, k, &mut knn, &mut serial);
            assert_eq!(fast.len(), serial.len());
            for (a, b) in fast.iter().zip(&serial) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
            }
        }
    }

    #[test]
    fn f32_unsafe_values_disable_the_mirror() {
        let huge = FingerprintDb::from_fingerprints(vec![
            (l(1), Fingerprint::new(vec![1.0e16, 0.0, 0.0, 0.0])),
            (l(2), Fingerprint::new(vec![0.0, 1.0e16, 0.0, 0.0])),
        ])
        .unwrap();
        let index = FingerprintIndex::build(&huge);
        assert!(!index.has_mirror());
        // The mirror entry point still answers correctly via fallback.
        let mut scratch = crate::block::BlockScratch::new();
        let mut out = Vec::new();
        index.k_nearest_mirror_into::<SquaredEuclidean>(
            &[1.0e16, 0.0, 0.0, 0.0],
            1,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out[0].location, l(1));
        assert_eq!(out[0].dissimilarity, 0.0);
    }

    #[test]
    #[should_panic(expected = "match database")]
    fn wrong_query_length_panics() {
        let index = FingerprintIndex::build(&db());
        index.nearest(&[-40.0]);
    }
}
