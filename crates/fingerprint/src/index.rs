//! A columnar (structure-of-arrays) fingerprint index.
//!
//! [`FingerprintDb`] stores one heap-allocated [`Fingerprint`] per
//! location, so a k-NN scan chases a pointer per candidate and pays a
//! virtual `dyn Dissimilarity` call plus a square root per comparison.
//! [`FingerprintIndex`] flattens the database once into a dense
//! row-major `locations × APs` matrix with precomputed per-location
//! squared norms, and ranks candidates through monomorphized
//! [`MetricKernel`]s on *squared* distance — the square root is
//! deferred to the k survivors.
//!
//! Ranking on squared Euclidean distance reproduces the legacy
//! [`crate::knn::k_nearest`] ordering exactly: the squared sum is
//! accumulated in the same slice order as [`crate::metric::Euclidean`]
//! (see [`crate::metric::euclidean_sq`]), `sqrt` is monotone, and ties
//! break by lower location id in both paths.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::knn::Neighbor;
use crate::metric::{cosine, euclidean_sq, manhattan, masked_euclidean_sq};
use moloc_geometry::LocationId;
use std::cmp::Ordering;
use std::ops::Range;

/// A monomorphized ranking metric for index scans.
///
/// `rank` produces the value candidates are *ordered* by; `finalize`
/// converts a survivor's rank into the reported dissimilarity. For
/// Euclidean this splits `φ = sqrt(Σ d²)` so the scan never takes a
/// square root; metrics without a cheap monotone surrogate rank on the
/// full dissimilarity and finalize with the identity.
pub trait MetricKernel: Copy + Send + Sync + 'static {
    /// The ordering value for one candidate row.
    fn rank(query: &[f64], row: &[f64]) -> f64;

    /// The reported dissimilarity of a surviving candidate.
    fn finalize(rank: f64) -> f64;

    /// A short human-readable name for reports.
    fn name() -> &'static str;
}

/// Euclidean ranking on squared distance, `sqrt` deferred to survivors.
///
/// Bit-identical to [`crate::metric::Euclidean`]: both accumulate
/// [`crate::metric::euclidean_sq`] and apply `sqrt` to the same sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SquaredEuclidean;

impl MetricKernel for SquaredEuclidean {
    #[inline]
    fn rank(query: &[f64], row: &[f64]) -> f64 {
        euclidean_sq(query, row)
    }

    #[inline]
    fn finalize(rank: f64) -> f64 {
        rank.sqrt()
    }

    fn name() -> &'static str {
        "euclidean"
    }
}

/// Manhattan (L1) ranking; the rank already is the dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManhattanKernel;

impl MetricKernel for ManhattanKernel {
    #[inline]
    fn rank(query: &[f64], row: &[f64]) -> f64 {
        manhattan(query, row)
    }

    #[inline]
    fn finalize(rank: f64) -> f64 {
        rank
    }

    fn name() -> &'static str {
        "manhattan"
    }
}

/// Cosine ranking; the rank already is the dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CosineKernel;

impl MetricKernel for CosineKernel {
    #[inline]
    fn rank(query: &[f64], row: &[f64]) -> f64 {
        cosine(query, row)
    }

    #[inline]
    fn finalize(rank: f64) -> f64 {
        rank
    }

    fn name() -> &'static str {
        "cosine"
    }
}

/// One retained scan candidate: rank ascending, ties broken by lower
/// row position (rows are stored in location-id order, so position
/// order is id order).
#[derive(Debug, Clone, Copy)]
struct RankEntry {
    rank: f64,
    position: u32,
}

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankEntry {}

impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank
            .partial_cmp(&other.rank)
            .expect("ranks are finite")
            .then_with(|| self.position.cmp(&other.position))
    }
}

/// One survivor of a per-shard top-k scan: the pre-`finalize` rank and
/// the **global** row position. Kept in rank space (not finalized
/// dissimilarity) so the cross-shard merge orders by exactly the key
/// the serial scan selects by — `finalize` can collapse distinct ranks
/// onto one float, which would let a merge on dissimilarities break
/// ties differently than the serial scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCandidate {
    /// The candidate's `K::rank` value (finite).
    pub rank: f64,
    /// Row position in the full index (location-id order).
    pub position: u32,
}

/// Reusable k-NN selection state: a bounded candidate table whose
/// backing allocation survives across queries. After the first query at
/// a given `k`, selection performs no heap allocations.
#[derive(Debug, Default)]
pub struct KnnScratch {
    /// The best `≤ k` candidates seen so far, *unsorted* during the
    /// scan (replacement targets the current worst slot; keeping the
    /// table unsorted makes the common reject path a single float
    /// compare) and sorted once at the end.
    slots: Vec<RankEntry>,
}

impl KnnScratch {
    /// An empty scratch; capacity grows to `k` on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for queries with the given `k`.
    pub fn with_k(k: usize) -> Self {
        Self {
            slots: Vec::with_capacity(k),
        }
    }
}

/// Selects the `k` smallest ranks (ties to lower position) from a
/// position-ordered rank stream into `slots`, unsorted.
///
/// Once the table is full, a row can only displace a retained one when
/// its rank is *strictly* below the cached worst — equal ranks lose the
/// position tie-break to every retained entry — so the common reject
/// path is a single float compare. NaN ranks never pass that compare;
/// a NaN entering during the fill phase is caught by the caller's final
/// sort (`RankEntry`'s total order panics on NaN).
#[inline(always)]
fn select(mut ranks: impl Iterator<Item = f64>, k: usize, slots: &mut Vec<RankEntry>) {
    // Fill phase: the first `k` rows are all retained.
    let mut position = 0u32;
    for rank in ranks.by_ref().take(k) {
        slots.push(RankEntry { rank, position });
        position += 1;
    }
    if slots.len() < k {
        return;
    }
    // Steady state over a fixed-size table: `worst`/`worst_at` live in
    // registers and the table is only touched on (rare) replacements.
    let slots = slots.as_mut_slice();
    let mut worst_at = worst_slot(slots);
    let mut worst = slots[worst_at].rank;
    for rank in ranks {
        if rank < worst {
            slots[worst_at] = RankEntry { rank, position };
            worst_at = worst_slot(slots);
            worst = slots[worst_at].rank;
        }
        position += 1;
    }
}

/// Index of the worst slot under (rank ascending, position ascending) —
/// the replacement target once the table is full.
#[inline]
fn worst_slot(slots: &[RankEntry]) -> usize {
    let mut at = 0usize;
    for (i, e) in slots.iter().enumerate().skip(1) {
        let w = slots[at];
        if e.rank > w.rank || (e.rank == w.rank && e.position > w.position) {
            at = i;
        }
    }
    at
}

/// The flattened, cache-friendly view of a [`FingerprintDb`].
///
/// Rows are stored contiguously in location-id order; `sq_norms[i]`
/// caches `Σ rowᵢ²` for norm-based pruning and diagnostics.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::db::FingerprintDb;
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_fingerprint::index::FingerprintIndex;
/// use moloc_geometry::LocationId;
///
/// let db = FingerprintDb::from_fingerprints(vec![
///     (LocationId::new(1), Fingerprint::new(vec![-40.0, -70.0])),
///     (LocationId::new(2), Fingerprint::new(vec![-70.0, -40.0])),
/// ])?;
/// let index = FingerprintIndex::build(&db);
/// let query = Fingerprint::new(vec![-42.0, -69.0]);
/// assert_eq!(index.nearest(query.values()), LocationId::new(1));
/// # Ok::<(), moloc_fingerprint::db::DbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintIndex {
    ids: Vec<LocationId>,
    matrix: Vec<f64>,
    sq_norms: Vec<f64>,
    ap_count: usize,
}

impl FingerprintIndex {
    /// Flattens a database into the columnar layout. `O(locations ×
    /// APs)`, done once per scenario.
    pub fn build(db: &FingerprintDb) -> Self {
        let ap_count = db.ap_count();
        let mut ids = Vec::with_capacity(db.len());
        let mut matrix = Vec::with_capacity(db.len() * ap_count);
        let mut sq_norms = Vec::with_capacity(db.len());
        for (id, fp) in db.iter() {
            ids.push(id);
            matrix.extend_from_slice(fp.values());
            sq_norms.push(fp.values().iter().map(|v| v * v).sum());
        }
        Self {
            ids,
            matrix,
            sq_norms,
            ap_count,
        }
    }

    /// Number of indexed locations.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty (never true when built from a
    /// [`FingerprintDb`], which rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of APs per fingerprint row.
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// Location ids in row order (ascending).
    pub fn ids(&self) -> &[LocationId] {
        &self.ids
    }

    /// The fingerprint row at `position`.
    pub fn row(&self, position: usize) -> &[f64] {
        &self.matrix[position * self.ap_count..(position + 1) * self.ap_count]
    }

    /// The precomputed squared norm `Σ rowᵢ²` at `position`.
    pub fn sq_norm(&self, position: usize) -> f64 {
        self.sq_norms[position]
    }

    /// The row position of a location id, if indexed.
    pub fn position_of(&self, id: LocationId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The single nearest location by Euclidean distance, ties broken
    /// by lower id (the strict `<` keeps the earliest row, and rows are
    /// in id order).
    ///
    /// # Panics
    ///
    /// Panics if the query length does not match the index's AP count.
    pub fn nearest(&self, query: &[f64]) -> LocationId {
        self.check_query(query);
        let mut best = 0u32;
        let mut best_rank = f64::INFINITY;
        self.scan_rows::<SquaredEuclidean>(query, |position, rank| {
            if rank < best_rank {
                best = position;
                best_rank = rank;
            }
        });
        self.ids[best as usize]
    }

    /// The `k` nearest locations under kernel `K`, ascending by
    /// dissimilarity with ties broken by lower id, written into `out`
    /// (cleared first). With a warm `scratch` and `out`, the scan
    /// performs zero heap allocations.
    ///
    /// Matches [`crate::knn::k_nearest`] output exactly for
    /// [`SquaredEuclidean`] vs [`crate::metric::Euclidean`] (see the
    /// module docs for why the squared ranking preserves order).
    ///
    /// Selection keeps the best `k` candidates in an unsorted slot
    /// table with a cached worst rank: rows are visited in ascending
    /// position, so a later row can only displace a retained one when
    /// its rank is *strictly* smaller than the current worst (equal
    /// ranks lose the position tie-break) — the common reject is a
    /// single float compare with no data-dependent branch history.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, the query length does not match the
    /// index's AP count (same contract as [`crate::knn::k_nearest`]),
    /// or a NaN rank lands among the retained `k` (ranks must be
    /// finite; a NaN outside the retained set is never selected).
    pub fn k_nearest_into<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.queries", 1),
            ("fingerprint.knn.candidates_scanned", self.len() as u64),
        ]);
        let slots = &mut scratch.slots;
        slots.clear();
        slots.reserve(k.min(self.len()));
        // Dispatch to a standalone monomorphic selection per row width:
        // keeping each unrolled scan in its own (deliberately
        // non-inlined) function avoids one seven-armed giant whose
        // register pressure slows every arm.
        match self.ap_count {
            4 => self.k_select::<K, 4>(query, k, slots),
            5 => self.k_select::<K, 5>(query, k, slots),
            6 => self.k_select::<K, 6>(query, k, slots),
            7 => self.k_select::<K, 7>(query, k, slots),
            8 => self.k_select::<K, 8>(query, k, slots),
            _ => self.k_select_dyn::<K>(query, k, slots),
        }
        // One final sort of k entries replaces per-row ordering work;
        // `RankEntry`'s total order panics on NaN ranks here.
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| Neighbor {
            location: self.ids[entry.position as usize],
            dissimilarity: K::finalize(entry.rank),
        }));
    }

    /// Masked k-NN for queries with missing (non-finite) APs: a
    /// dropped AP contributes nothing to any row's distance instead of
    /// turning every rank into NaN (which would panic the selection
    /// sort) or being misread as "RSS 0 dBm". Partial sums are rescaled
    /// by `ap_count / observed` so dissimilarities stay comparable to
    /// the full-width metric in expectation. Returns the number of
    /// observed (finite) query dimensions; zero means nothing was
    /// observable and every row ranked 0 — callers should treat the
    /// resulting candidates as an uninformative uniform prior.
    ///
    /// This is the degradation path: clean queries must keep using
    /// [`FingerprintIndex::k_nearest_into`], which is bit-identical to
    /// the legacy scan and considerably faster.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the query length does not match the
    /// index's AP count.
    pub fn k_nearest_masked_into(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) -> usize {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        moloc_obs::counter_add_batch(&[
            ("fingerprint.knn.masked_queries", 1),
            ("fingerprint.knn.candidates_scanned", self.len() as u64),
        ]);
        let observed = query.iter().filter(|v| v.is_finite()).count();
        let scale = if observed == 0 {
            0.0
        } else {
            self.ap_count as f64 / observed as f64
        };
        let slots = &mut scratch.slots;
        slots.clear();
        slots.reserve(k.min(self.len()));
        if self.ap_count == 0 {
            select((0..self.len()).map(|_| 0.0), k, slots);
        } else {
            select(
                self.matrix.chunks_exact(self.ap_count).map(|row| {
                    let (sum, _) = masked_euclidean_sq(query, row);
                    sum * scale
                }),
                k,
                slots,
            );
        }
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| Neighbor {
            location: self.ids[entry.position as usize],
            dissimilarity: SquaredEuclidean::finalize(entry.rank),
        }));
        observed
    }

    /// The single nearest location under the masked metric of
    /// [`FingerprintIndex::k_nearest_masked_into`], ties broken by
    /// lower id. With no observable dimension every row ranks 0 and
    /// the lowest id wins.
    ///
    /// # Panics
    ///
    /// Panics if the query length does not match the index's AP count.
    pub fn nearest_masked(&self, query: &[f64]) -> LocationId {
        self.check_query(query);
        if self.ap_count == 0 {
            return self.ids[0];
        }
        let mut best = 0usize;
        let mut best_rank = f64::INFINITY;
        for (position, row) in self.matrix.chunks_exact(self.ap_count).enumerate() {
            let (rank, _) = masked_euclidean_sq(query, row);
            if rank < best_rank {
                best = position;
                best_rank = rank;
            }
        }
        self.ids[best]
    }

    /// Per-shard top-`k` for the parallel scan path: ranks only the
    /// rows in `rows` and writes up to `k` survivors into `out`
    /// (cleared first), each carrying its **global** row position,
    /// sorted by (rank ascending, position ascending).
    ///
    /// Workers run this over disjoint row ranges concurrently; the
    /// caller combines their outputs with
    /// [`FingerprintIndex::merge_shard_candidates`]. Because the total
    /// order is on pre-`finalize` ranks and global positions — exactly
    /// the order the serial [`FingerprintIndex::k_nearest_into`] scan
    /// selects by — the merged result is identical to the serial scan,
    /// ties included, for any sharding of the rows.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, the query length does not match the
    /// index's AP count, `rows` is out of bounds, or a NaN rank lands
    /// among the retained `k`.
    pub fn shard_candidates<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        rows: Range<usize>,
        scratch: &mut KnnScratch,
        out: &mut Vec<ShardCandidate>,
    ) {
        assert!(k > 0, "k must be positive");
        self.check_query(query);
        assert!(
            rows.start <= rows.end && rows.end <= self.len(),
            "shard rows out of bounds"
        );
        let slots = &mut scratch.slots;
        slots.clear();
        slots.reserve(k.min(rows.len()));
        match self.ap_count {
            4 => self.shard_select::<K, 4>(query, k, rows.clone(), slots),
            5 => self.shard_select::<K, 5>(query, k, rows.clone(), slots),
            6 => self.shard_select::<K, 6>(query, k, rows.clone(), slots),
            7 => self.shard_select::<K, 7>(query, k, rows.clone(), slots),
            8 => self.shard_select::<K, 8>(query, k, rows.clone(), slots),
            _ => self.shard_select_dyn::<K>(query, k, rows.clone(), slots),
        }
        slots.sort_unstable();
        out.clear();
        out.extend(slots.iter().map(|entry| ShardCandidate {
            rank: entry.rank,
            position: entry.position + rows.start as u32,
        }));
    }

    /// Combines per-shard candidate lists into the final top-`k`
    /// neighbor list, bit-identical (order, ties, and finalized
    /// dissimilarities) to a serial
    /// [`FingerprintIndex::k_nearest_into`] over the whole index —
    /// provided the shards partition the rows and each list came from
    /// [`FingerprintIndex::shard_candidates`] with the same query, `k`,
    /// and kernel.
    ///
    /// `candidates` is consumed as a scratch buffer (sorted in place);
    /// `out` receives the merged neighbors, cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or any candidate rank is NaN.
    pub fn merge_shard_candidates<K: MetricKernel>(
        &self,
        k: usize,
        candidates: &mut Vec<ShardCandidate>,
        out: &mut Vec<Neighbor>,
    ) {
        assert!(k > 0, "k must be positive");
        // The global top-k under (rank, position) is contained in the
        // union of per-shard top-k's under the same order, so sorting
        // the union and truncating reproduces the serial selection.
        candidates.sort_unstable_by(|a, b| {
            a.rank
                .partial_cmp(&b.rank)
                .expect("ranks are finite")
                .then_with(|| a.position.cmp(&b.position))
        });
        candidates.truncate(k);
        out.clear();
        out.extend(candidates.iter().map(|c| Neighbor {
            location: self.ids[c.position as usize],
            dissimilarity: K::finalize(c.rank),
        }));
    }

    /// [`FingerprintIndex::k_select`] over a row range, positions
    /// relative to `rows.start` (rebased by the caller).
    fn shard_select<K: MetricKernel, const N: usize>(
        &self,
        query: &[f64],
        k: usize,
        rows: Range<usize>,
        slots: &mut Vec<RankEntry>,
    ) {
        let query: &[f64; N] = query.try_into().expect("query length checked");
        let sub = &self.matrix[rows.start * N..rows.end * N];
        select(
            sub.chunks_exact(N).map(|row| {
                let row: &[f64; N] = row.try_into().expect("chunks are N wide");
                K::rank(query, row)
            }),
            k,
            slots,
        );
    }

    /// [`FingerprintIndex::shard_select`] for uncommon row widths (and
    /// the zero-AP degenerate index).
    fn shard_select_dyn<K: MetricKernel>(
        &self,
        query: &[f64],
        k: usize,
        rows: Range<usize>,
        slots: &mut Vec<RankEntry>,
    ) {
        if self.ap_count == 0 {
            select(rows.map(|_| K::rank(query, &[])), k, slots);
        } else {
            let sub = &self.matrix[rows.start * self.ap_count..rows.end * self.ap_count];
            select(
                sub.chunks_exact(self.ap_count)
                    .map(|row| K::rank(query, row)),
                k,
                slots,
            );
        }
    }

    /// Convenience wrapper over [`FingerprintIndex::k_nearest_into`]
    /// with the Euclidean kernel and throwaway buffers.
    pub fn k_nearest(&self, query: &Fingerprint, k: usize) -> Vec<Neighbor> {
        let mut scratch = KnnScratch::with_k(k);
        let mut out = Vec::with_capacity(k);
        self.k_nearest_into::<SquaredEuclidean>(query.values(), k, &mut scratch, &mut out);
        out
    }

    /// The finalized dissimilarity of every row to `query`, in row
    /// order, written into `out` (cleared first). Used for full-state
    /// emission models (Viterbi) that need all distances anyway.
    ///
    /// # Panics
    ///
    /// Panics if the query length does not match the index's AP count.
    pub fn rank_all_into<K: MetricKernel>(&self, query: &[f64], out: &mut Vec<f64>) {
        self.check_query(query);
        out.clear();
        out.reserve(self.len());
        self.scan_rows::<K>(query, |_, rank| out.push(K::finalize(rank)));
    }

    /// K-smallest selection over rows of compile-time width `N`.
    fn k_select<K: MetricKernel, const N: usize>(
        &self,
        query: &[f64],
        k: usize,
        slots: &mut Vec<RankEntry>,
    ) {
        let query: &[f64; N] = query.try_into().expect("query length checked");
        select(
            self.matrix.chunks_exact(N).map(|row| {
                let row: &[f64; N] = row.try_into().expect("chunks are N wide");
                K::rank(query, row)
            }),
            k,
            slots,
        );
    }

    /// K-smallest selection for uncommon row widths (and the zero-AP
    /// degenerate index, whose `len()` rows are all empty).
    fn k_select_dyn<K: MetricKernel>(&self, query: &[f64], k: usize, slots: &mut Vec<RankEntry>) {
        if self.ap_count == 0 {
            select((0..self.len()).map(|_| K::rank(query, &[])), k, slots);
        } else {
            select(
                self.matrix
                    .chunks_exact(self.ap_count)
                    .map(|row| K::rank(query, row)),
                k,
                slots,
            );
        }
    }

    /// Applies `f(position, K::rank(query, row))` to every row.
    ///
    /// Common AP counts dispatch to a const-width loop: with the row
    /// (and query) length known at compile time the distance loop fully
    /// unrolls, and the row iterator carries no per-row bounds checks —
    /// together roughly a 3x faster scan than indexing `row(position)`.
    /// The caller must have validated `query` via `check_query`.
    #[inline(always)]
    fn scan_rows<K: MetricKernel>(&self, query: &[f64], mut f: impl FnMut(u32, f64)) {
        match self.ap_count {
            // A zero-AP index still has `len()` (empty) rows.
            0 => (0..self.len()).for_each(|p| f(p as u32, K::rank(query, &[]))),
            4 => self.scan_rows_const::<K, 4>(query, f),
            5 => self.scan_rows_const::<K, 5>(query, f),
            6 => self.scan_rows_const::<K, 6>(query, f),
            7 => self.scan_rows_const::<K, 7>(query, f),
            8 => self.scan_rows_const::<K, 8>(query, f),
            ap => self
                .matrix
                .chunks_exact(ap)
                .enumerate()
                .for_each(|(p, row)| f(p as u32, K::rank(query, row))),
        }
    }

    /// [`FingerprintIndex::scan_rows`] monomorphized on the row width.
    #[inline(always)]
    fn scan_rows_const<K: MetricKernel, const N: usize>(
        &self,
        query: &[f64],
        mut f: impl FnMut(u32, f64),
    ) {
        let query: &[f64; N] = query.try_into().expect("query length checked");
        for (position, row) in self.matrix.chunks_exact(N).enumerate() {
            let row: &[f64; N] = row.try_into().expect("chunks are N wide");
            f(position as u32, K::rank(query, row));
        }
    }

    fn check_query(&self, query: &[f64]) {
        assert_eq!(
            query.len(),
            self.ap_count,
            "query fingerprint length must match database"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::k_nearest;
    use crate::metric::{Cosine, Dissimilarity, Euclidean, Manhattan};

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(7), Fingerprint::new(vec![-70.0, -40.0])),
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(3), Fingerprint::new(vec![-50.0, -60.0])),
        ])
        .unwrap()
    }

    #[test]
    fn layout_is_row_major_in_id_order() {
        let index = FingerprintIndex::build(&db());
        assert_eq!(index.len(), 3);
        assert_eq!(index.ap_count(), 2);
        assert_eq!(index.ids(), &[l(1), l(3), l(7)]);
        assert_eq!(index.row(0), &[-40.0, -70.0]);
        assert_eq!(index.row(2), &[-70.0, -40.0]);
        assert_eq!(index.sq_norm(0), 40.0 * 40.0 + 70.0 * 70.0);
        assert_eq!(index.position_of(l(3)), Some(1));
        assert_eq!(index.position_of(l(2)), None);
    }

    #[test]
    fn nearest_matches_k1_legacy_path() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-48.0, -61.0]);
        let legacy = k_nearest(&database, &q, 1, &Euclidean)[0].location;
        assert_eq!(index.nearest(q.values()), legacy);
    }

    #[test]
    fn k_nearest_matches_legacy_order_and_bits() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        for k in 1..=4 {
            let legacy = k_nearest(&database, &q, k, &Euclidean);
            let fast = index.k_nearest(&q, k);
            assert_eq!(fast.len(), legacy.len());
            for (a, b) in fast.iter().zip(&legacy) {
                assert_eq!(a.location, b.location);
                assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
            }
        }
    }

    #[test]
    fn ties_broken_by_lower_id() {
        let tied = FingerprintDb::from_fingerprints(vec![
            (l(5), Fingerprint::new(vec![-40.0])),
            (l(2), Fingerprint::new(vec![-40.0])),
        ])
        .unwrap();
        let index = FingerprintIndex::build(&tied);
        let q = Fingerprint::new(vec![-40.0]);
        assert_eq!(index.nearest(q.values()), l(2));
        let nn = index.k_nearest(&q, 2);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[1].location, l(5));
    }

    #[test]
    fn scratch_reuse_is_stable_across_queries() {
        let index = FingerprintIndex::build(&db());
        let mut scratch = KnnScratch::with_k(2);
        let mut out = Vec::with_capacity(2);
        let q1 = Fingerprint::new(vec![-41.0, -69.0]);
        let q2 = Fingerprint::new(vec![-69.0, -41.0]);
        index.k_nearest_into::<SquaredEuclidean>(q1.values(), 2, &mut scratch, &mut out);
        let first: Vec<_> = out.clone();
        index.k_nearest_into::<SquaredEuclidean>(q2.values(), 2, &mut scratch, &mut out);
        assert_eq!(out[0].location, l(7));
        index.k_nearest_into::<SquaredEuclidean>(q1.values(), 2, &mut scratch, &mut out);
        assert_eq!(out, first);
    }

    #[test]
    fn manhattan_and_cosine_kernels_match_trait_metrics() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-45.0, -63.0]);
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        index.k_nearest_into::<ManhattanKernel>(q.values(), 3, &mut scratch, &mut out);
        for (a, b) in out.iter().zip(&k_nearest(&database, &q, 3, &Manhattan)) {
            assert_eq!(a.location, b.location);
            assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
        index.k_nearest_into::<CosineKernel>(q.values(), 3, &mut scratch, &mut out);
        for (a, b) in out.iter().zip(&k_nearest(&database, &q, 3, &Cosine)) {
            assert_eq!(a.location, b.location);
            assert_eq!(a.dissimilarity.to_bits(), b.dissimilarity.to_bits());
        }
    }

    #[test]
    fn rank_all_matches_per_row_dissimilarity() {
        let database = db();
        let index = FingerprintIndex::build(&database);
        let q = Fingerprint::new(vec![-44.0, -66.0]);
        let mut out = Vec::new();
        index.rank_all_into::<SquaredEuclidean>(q.values(), &mut out);
        assert_eq!(out.len(), 3);
        for (position, (_, fp)) in database.iter().enumerate() {
            assert_eq!(
                out[position].to_bits(),
                Euclidean.dissimilarity(&q, fp).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let index = FingerprintIndex::build(&db());
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        index.k_nearest_into::<SquaredEuclidean>(&[-40.0, -70.0], 0, &mut scratch, &mut out);
    }

    #[test]
    #[should_panic(expected = "match database")]
    fn wrong_query_length_panics() {
        let index = FingerprintIndex::build(&db());
        index.nearest(&[-40.0]);
    }
}
