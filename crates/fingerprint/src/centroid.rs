//! Weighted-centroid k-NN localization (continuous estimates).
//!
//! The discrete localizers in this crate return a reference *location*;
//! the classic RADAR refinement instead averages the positions of the k
//! nearest fingerprints, weighted by inverse dissimilarity, yielding a
//! continuous position whose error is not quantized to the grid. The
//! reproduction offers it as an additional fingerprint-only baseline
//! for error-in-meters comparisons.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::knn::k_nearest;
use crate::metric::Euclidean;
use moloc_geometry::{ReferenceGrid, Vec2};

/// Weighted-centroid localizer over the k nearest fingerprints.
///
/// # Examples
///
/// ```
/// use moloc_fingerprint::centroid::CentroidLocalizer;
/// use moloc_fingerprint::db::FingerprintDb;
/// use moloc_fingerprint::fingerprint::Fingerprint;
/// use moloc_geometry::{LocationId, ReferenceGrid, Vec2};
///
/// let grid = ReferenceGrid::new(Vec2::new(0.0, 0.0), 2, 1, 4.0, 4.0)?;
/// let db = FingerprintDb::from_fingerprints(vec![
///     (LocationId::new(1), Fingerprint::new(vec![-40.0])),
///     (LocationId::new(2), Fingerprint::new(vec![-60.0])),
/// ])?;
/// let localizer = CentroidLocalizer::new(&db, &grid, 2);
/// // A query exactly between the two fingerprints lands mid-grid.
/// let p = localizer.localize(&Fingerprint::new(vec![-50.0]))?;
/// assert!((p.x - 2.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CentroidLocalizer<'a> {
    db: &'a FingerprintDb,
    grid: &'a ReferenceGrid,
    k: usize,
    metric: Euclidean,
}

/// Error from [`CentroidLocalizer::localize`]: query length mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentroidError {
    /// Expected AP count.
    pub expected: usize,
    /// Found AP count.
    pub found: usize,
}

impl std::fmt::Display for CentroidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query has {} APs but the database expects {}",
            self.found, self.expected
        )
    }
}

impl std::error::Error for CentroidError {}

impl<'a> CentroidLocalizer<'a> {
    /// Creates a localizer averaging over the `k` nearest fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(db: &'a FingerprintDb, grid: &'a ReferenceGrid, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            db,
            grid,
            k,
            metric: Euclidean,
        }
    }

    /// The continuous position estimate for a query.
    ///
    /// # Errors
    ///
    /// Returns [`CentroidError`] when the query's AP count mismatches
    /// the database.
    pub fn localize(&self, query: &Fingerprint) -> Result<Vec2, CentroidError> {
        if query.len() != self.db.ap_count() {
            return Err(CentroidError {
                expected: self.db.ap_count(),
                found: query.len(),
            });
        }
        let neighbors = k_nearest(self.db, query, self.k, &self.metric);
        // An exact match pins the estimate.
        if let Some(exact) = neighbors.iter().find(|n| n.dissimilarity <= f64::EPSILON) {
            return Ok(self.grid.position(exact.location));
        }
        let mut total = 0.0;
        let mut centroid = Vec2::ZERO;
        for n in &neighbors {
            let w = 1.0 / n.dissimilarity;
            centroid += self.grid.position(n.location) * w;
            total += w;
        }
        Ok(centroid / total)
    }

    /// Like [`CentroidLocalizer::localize`] but snapped to the nearest
    /// reference location (for accuracy accounting against discrete
    /// methods).
    ///
    /// # Errors
    ///
    /// Same as [`CentroidLocalizer::localize`].
    pub fn localize_discrete(
        &self,
        query: &Fingerprint,
    ) -> Result<moloc_geometry::LocationId, CentroidError> {
        Ok(self.grid.nearest(self.localize(query)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    fn world() -> (FingerprintDb, ReferenceGrid) {
        let grid = ReferenceGrid::new(Vec2::new(0.0, 8.0), 3, 2, 4.0, 4.0).unwrap();
        let db = FingerprintDb::from_fingerprints(vec![
            (l(1), fp(&[-40.0, -70.0])),
            (l(2), fp(&[-50.0, -60.0])),
            (l(3), fp(&[-60.0, -50.0])),
            (l(4), fp(&[-45.0, -65.0])),
            (l(5), fp(&[-55.0, -55.0])),
            (l(6), fp(&[-65.0, -45.0])),
        ])
        .unwrap();
        (db, grid)
    }

    #[test]
    fn exact_match_returns_its_position() {
        let (db, grid) = world();
        let loc = CentroidLocalizer::new(&db, &grid, 3);
        let p = loc.localize(&fp(&[-50.0, -60.0])).unwrap();
        assert_eq!(p, grid.position(l(2)));
    }

    #[test]
    fn interpolates_between_neighbors() {
        let (db, grid) = world();
        let loc = CentroidLocalizer::new(&db, &grid, 2);
        // Exactly between L1 and L2 in fingerprint space.
        let p = loc
            .localize(&fp(&[-45.0, -65.0].map(|v: f64| v - 0.0)))
            .unwrap();
        // The centroid is between the two positions (x in [0, 4]).
        assert!(p.x >= 0.0 && p.x <= 4.0, "x = {}", p.x);
        assert!((p.y - 8.0).abs() <= 4.0);
    }

    #[test]
    fn k1_degenerates_to_nearest_neighbor() {
        let (db, grid) = world();
        let loc = CentroidLocalizer::new(&db, &grid, 1);
        let p = loc.localize(&fp(&[-41.0, -69.0])).unwrap();
        assert_eq!(p, grid.position(l(1)));
        assert_eq!(loc.localize_discrete(&fp(&[-41.0, -69.0])).unwrap(), l(1));
    }

    #[test]
    fn centroid_error_can_beat_nn_on_between_queries() {
        // A user standing midway between two surveyed spots: NN snaps to
        // one of them (2 m error); the centroid lands in between.
        let (db, grid) = world();
        let nn_pos = grid.position(l(1));
        let mid = nn_pos.lerp(grid.position(l(2)), 0.5);
        let query = fp(&[-45.0, -65.0]); // midway fingerprint... L4's too
        let centroid = CentroidLocalizer::new(&db, &grid, 3)
            .localize(&query)
            .unwrap();
        // Not asserting dominance (L4 shares the fingerprint), just
        // sanity: the estimate stays within the hall.
        assert!(centroid.dist(mid) < 10.0);
    }

    #[test]
    fn query_length_mismatch_errors() {
        let (db, grid) = world();
        let loc = CentroidLocalizer::new(&db, &grid, 2);
        assert_eq!(
            loc.localize(&fp(&[-40.0])).unwrap_err(),
            CentroidError {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let (db, grid) = world();
        let _ = CentroidLocalizer::new(&db, &grid, 0);
    }
}
