//! k-nearest-neighbor retrieval over the fingerprint database.
//!
//! Implements the candidate-selection rule of the paper's Eq. 3: the k
//! locations whose stored fingerprints are nearest (by the configured
//! dissimilarity) to the query fingerprint.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::metric::Dissimilarity;
use moloc_geometry::LocationId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One k-NN match: a location and its dissimilarity `mᵢ = φ(F, Fᵢ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The candidate location.
    pub location: LocationId,
    /// Its fingerprint dissimilarity to the query.
    pub dissimilarity: f64,
}

/// [`Neighbor`] with the total order `k_nearest` selects by:
/// dissimilarity ascending, ties broken by lower location id. Wrapped
/// so a max-[`BinaryHeap`] keeps the *worst* retained neighbor on top.
struct HeapEntry(Neighbor);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .dissimilarity
            .partial_cmp(&other.0.dissimilarity)
            .expect("dissimilarities are finite")
            .then_with(|| self.0.location.cmp(&other.0.location))
    }
}

/// The `k` nearest locations to `query`, ascending by dissimilarity
/// (ties broken by lower location id, making results deterministic).
///
/// Returns fewer than `k` entries when the database is smaller than
/// `k`.
///
/// Selection keeps a bounded max-heap of the best `k` seen so far —
/// `O(n log k)` instead of sorting all `n` locations; for the paper's
/// `k = 8` over hundreds of locations, most candidates are rejected by
/// a single comparison against the heap top.
///
/// # Panics
///
/// Panics if `k` is zero or the query length does not match the
/// database's AP count.
pub fn k_nearest(
    db: &FingerprintDb,
    query: &Fingerprint,
    k: usize,
    metric: &dyn Dissimilarity,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        query.len(),
        db.ap_count(),
        "query fingerprint length must match database"
    );
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k);
    for (location, fp) in db.iter() {
        let entry = HeapEntry(Neighbor {
            location,
            dissimilarity: metric.dissimilarity(query, fp),
        });
        if heap.len() < k {
            heap.push(entry);
        } else if entry < *heap.peek().expect("heap is at capacity k > 0") {
            heap.pop();
            heap.push(entry);
        }
    }
    heap.into_sorted_vec().into_iter().map(|e| e.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(2), Fingerprint::new(vec![-50.0, -60.0])),
            (l(3), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap()
    }

    #[test]
    fn returns_k_sorted_matches() {
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        let nn = k_nearest(&db(), &q, 2, &Euclidean);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].location, l(1));
        assert_eq!(nn[1].location, l(2));
        assert!(nn[0].dissimilarity <= nn[1].dissimilarity);
    }

    #[test]
    fn k_larger_than_db_returns_all() {
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        let nn = k_nearest(&db(), &q, 10, &Euclidean);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn exact_match_has_zero_dissimilarity() {
        let q = Fingerprint::new(vec![-50.0, -60.0]);
        let nn = k_nearest(&db(), &q, 1, &Euclidean);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[0].dissimilarity, 0.0);
    }

    #[test]
    fn ties_broken_by_lower_id() {
        let tied = FingerprintDb::from_fingerprints(vec![
            (l(5), Fingerprint::new(vec![-40.0])),
            (l(2), Fingerprint::new(vec![-40.0])),
        ])
        .unwrap();
        let q = Fingerprint::new(vec![-40.0]);
        let nn = k_nearest(&tied, &q, 2, &Euclidean);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[1].location, l(5));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let q = Fingerprint::new(vec![-40.0, -70.0]);
        let _ = k_nearest(&db(), &q, 0, &Euclidean);
    }

    #[test]
    #[should_panic(expected = "match database")]
    fn wrong_query_length_panics() {
        let q = Fingerprint::new(vec![-40.0]);
        let _ = k_nearest(&db(), &q, 1, &Euclidean);
    }
}
