//! k-nearest-neighbor retrieval over the fingerprint database.
//!
//! Implements the candidate-selection rule of the paper's Eq. 3: the k
//! locations whose stored fingerprints are nearest (by the configured
//! dissimilarity) to the query fingerprint.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::metric::Dissimilarity;
use moloc_geometry::LocationId;

/// One k-NN match: a location and its dissimilarity `mᵢ = φ(F, Fᵢ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The candidate location.
    pub location: LocationId,
    /// Its fingerprint dissimilarity to the query.
    pub dissimilarity: f64,
}

/// The `k` nearest locations to `query`, ascending by dissimilarity
/// (ties broken by lower location id, making results deterministic).
///
/// Returns fewer than `k` entries when the database is smaller than
/// `k`.
///
/// # Panics
///
/// Panics if `k` is zero or the query length does not match the
/// database's AP count.
pub fn k_nearest(
    db: &FingerprintDb,
    query: &Fingerprint,
    k: usize,
    metric: &dyn Dissimilarity,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        query.len(),
        db.ap_count(),
        "query fingerprint length must match database"
    );
    let mut all: Vec<Neighbor> = db
        .iter()
        .map(|(location, fp)| Neighbor {
            location,
            dissimilarity: metric.dissimilarity(query, fp),
        })
        .collect();
    all.sort_by(|a, b| {
        a.dissimilarity
            .partial_cmp(&b.dissimilarity)
            .expect("dissimilarities are finite")
            .then_with(|| a.location.cmp(&b.location))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(2), Fingerprint::new(vec![-50.0, -60.0])),
            (l(3), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap()
    }

    #[test]
    fn returns_k_sorted_matches() {
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        let nn = k_nearest(&db(), &q, 2, &Euclidean);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].location, l(1));
        assert_eq!(nn[1].location, l(2));
        assert!(nn[0].dissimilarity <= nn[1].dissimilarity);
    }

    #[test]
    fn k_larger_than_db_returns_all() {
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        let nn = k_nearest(&db(), &q, 10, &Euclidean);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn exact_match_has_zero_dissimilarity() {
        let q = Fingerprint::new(vec![-50.0, -60.0]);
        let nn = k_nearest(&db(), &q, 1, &Euclidean);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[0].dissimilarity, 0.0);
    }

    #[test]
    fn ties_broken_by_lower_id() {
        let tied = FingerprintDb::from_fingerprints(vec![
            (l(5), Fingerprint::new(vec![-40.0])),
            (l(2), Fingerprint::new(vec![-40.0])),
        ])
        .unwrap();
        let q = Fingerprint::new(vec![-40.0]);
        let nn = k_nearest(&tied, &q, 2, &Euclidean);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[1].location, l(5));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let q = Fingerprint::new(vec![-40.0, -70.0]);
        let _ = k_nearest(&db(), &q, 0, &Euclidean);
    }

    #[test]
    #[should_panic(expected = "match database")]
    fn wrong_query_length_panics() {
        let q = Fingerprint::new(vec![-40.0]);
        let _ = k_nearest(&db(), &q, 1, &Euclidean);
    }
}
