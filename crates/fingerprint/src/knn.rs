//! k-nearest-neighbor retrieval over the fingerprint database.
//!
//! Implements the candidate-selection rule of the paper's Eq. 3: the k
//! locations whose stored fingerprints are nearest (by the configured
//! dissimilarity) to the query fingerprint.

use crate::db::FingerprintDb;
use crate::fingerprint::Fingerprint;
use crate::index::{FingerprintIndex, KnnScratch, MetricKernel, ShardCandidate};
use crate::metric::Dissimilarity;
use moloc_geometry::LocationId;
use std::cmp::Ordering;

/// One k-NN match: a location and its dissimilarity `mᵢ = φ(F, Fᵢ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The candidate location.
    pub location: LocationId,
    /// Its fingerprint dissimilarity to the query.
    pub dissimilarity: f64,
}

/// [`Neighbor`] with the total order `k_nearest` selects by:
/// dissimilarity ascending, ties broken by lower location id — strict,
/// since location ids are unique within a database.
struct HeapEntry(Neighbor);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .dissimilarity
            .partial_cmp(&other.0.dissimilarity)
            .expect("dissimilarities are finite")
            .then_with(|| self.0.location.cmp(&other.0.location))
    }
}

/// The `k` nearest locations to `query`, ascending by dissimilarity
/// (ties broken by lower location id, making results deterministic).
///
/// Returns fewer than `k` entries when the database is smaller than
/// `k`.
///
/// Allocates the result; stateful callers on a hot path should keep a
/// buffer and use [`k_nearest_into_buf`] instead.
///
/// # Panics
///
/// Panics if `k` is zero or the query length does not match the
/// database's AP count.
pub fn k_nearest(
    db: &FingerprintDb,
    query: &Fingerprint,
    k: usize,
    metric: &dyn Dissimilarity,
) -> Vec<Neighbor> {
    let mut out = Vec::with_capacity(k);
    k_nearest_into_buf(db, query, k, metric, &mut out);
    out
}

/// [`k_nearest`] into a caller-owned buffer (cleared first): with a
/// warmed `out` the scan performs zero heap allocations, so per-query
/// callers like the tracker's exact-scan backend stop paying one
/// `Vec` (and, previously, one `BinaryHeap`) per observation.
///
/// Selection keeps `out` as a bounded sorted buffer of the best `k`
/// seen so far — most candidates are rejected by a single comparison
/// against the current worst, and an accepted one costs a binary
/// search plus an `O(k)` shift (for the paper's `k = 8` that beats the
/// heap it replaced, and the result order is identical: the
/// (dissimilarity, location-id) total order is strict, so there is
/// exactly one sorted arrangement).
///
/// # Panics
///
/// Panics if `k` is zero or the query length does not match the
/// database's AP count.
pub fn k_nearest_into_buf(
    db: &FingerprintDb,
    query: &Fingerprint,
    k: usize,
    metric: &dyn Dissimilarity,
    out: &mut Vec<Neighbor>,
) {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        query.len(),
        db.ap_count(),
        "query fingerprint length must match database"
    );
    out.clear();
    for (location, fp) in db.iter() {
        let neighbor = Neighbor {
            location,
            dissimilarity: metric.dissimilarity(query, fp),
        };
        if out.len() == k {
            let worst = *out.last().expect("k > 0, buffer is full");
            if HeapEntry(neighbor) >= HeapEntry(worst) {
                continue;
            }
            out.pop();
        }
        let pos = out.partition_point(|&kept| HeapEntry(kept) < HeapEntry(neighbor));
        out.insert(pos, neighbor);
    }
}

/// Reference sharded k-NN: splits the index rows into shards of
/// `shard_rows`, scans each shard independently via
/// [`FingerprintIndex::shard_candidates`], and merges the per-shard
/// survivors with [`FingerprintIndex::merge_shard_candidates`].
///
/// This is the *serial* form of the scan parallel drivers shard across
/// workers — the property tests compare it (at many shard sizes)
/// against the full serial scan, locking in that shard boundaries can
/// never change the result. Parallel drivers reuse the same two
/// index methods, running shards concurrently.
///
/// # Panics
///
/// Panics if `k` or `shard_rows` is zero, or the query length does not
/// match the index's AP count.
pub fn k_nearest_sharded<K: MetricKernel>(
    index: &FingerprintIndex,
    query: &[f64],
    k: usize,
    shard_rows: usize,
) -> Vec<Neighbor> {
    assert!(shard_rows > 0, "shard_rows must be positive");
    let mut scratch = KnnScratch::with_k(k);
    let mut shard_out: Vec<ShardCandidate> = Vec::with_capacity(k);
    let mut merged: Vec<ShardCandidate> = Vec::new();
    let mut start = 0usize;
    while start < index.len() {
        let end = (start + shard_rows).min(index.len());
        index.shard_candidates::<K>(query, k, start..end, &mut scratch, &mut shard_out);
        merged.extend_from_slice(&shard_out);
        start = end;
    }
    let mut out = Vec::with_capacity(k);
    index.merge_shard_candidates::<K>(k, &mut merged, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Euclidean;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db() -> FingerprintDb {
        FingerprintDb::from_fingerprints(vec![
            (l(1), Fingerprint::new(vec![-40.0, -70.0])),
            (l(2), Fingerprint::new(vec![-50.0, -60.0])),
            (l(3), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap()
    }

    #[test]
    fn returns_k_sorted_matches() {
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        let nn = k_nearest(&db(), &q, 2, &Euclidean);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].location, l(1));
        assert_eq!(nn[1].location, l(2));
        assert!(nn[0].dissimilarity <= nn[1].dissimilarity);
    }

    #[test]
    fn k_larger_than_db_returns_all() {
        let q = Fingerprint::new(vec![-41.0, -69.0]);
        let nn = k_nearest(&db(), &q, 10, &Euclidean);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn exact_match_has_zero_dissimilarity() {
        let q = Fingerprint::new(vec![-50.0, -60.0]);
        let nn = k_nearest(&db(), &q, 1, &Euclidean);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[0].dissimilarity, 0.0);
    }

    #[test]
    fn ties_broken_by_lower_id() {
        let tied = FingerprintDb::from_fingerprints(vec![
            (l(5), Fingerprint::new(vec![-40.0])),
            (l(2), Fingerprint::new(vec![-40.0])),
        ])
        .unwrap();
        let q = Fingerprint::new(vec![-40.0]);
        let nn = k_nearest(&tied, &q, 2, &Euclidean);
        assert_eq!(nn[0].location, l(2));
        assert_eq!(nn[1].location, l(5));
    }

    #[test]
    fn into_buf_clears_and_matches_allocating_path() {
        let db = db();
        let q1 = Fingerprint::new(vec![-41.0, -69.0]);
        let q2 = Fingerprint::new(vec![-69.0, -41.0]);
        let mut buf = Vec::new();
        k_nearest_into_buf(&db, &q1, 2, &Euclidean, &mut buf);
        assert_eq!(buf, k_nearest(&db, &q1, 2, &Euclidean));
        // A reused (dirty, differently-sized) buffer gives the same
        // answer as a fresh one.
        k_nearest_into_buf(&db, &q2, 3, &Euclidean, &mut buf);
        assert_eq!(buf, k_nearest(&db, &q2, 3, &Euclidean));
        k_nearest_into_buf(&db, &q1, 1, &Euclidean, &mut buf);
        assert_eq!(buf, k_nearest(&db, &q1, 1, &Euclidean));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let q = Fingerprint::new(vec![-40.0, -70.0]);
        let _ = k_nearest(&db(), &q, 0, &Euclidean);
    }

    #[test]
    #[should_panic(expected = "match database")]
    fn wrong_query_length_panics() {
        let q = Fingerprint::new(vec![-40.0]);
        let _ = k_nearest(&db(), &q, 1, &Euclidean);
    }
}
