//! Circular (angular) statistics, in degrees.
//!
//! Compass headings and motion directions live on a circle: `359°` and
//! `1°` are two degrees apart, and averaging them must give `0°`, not
//! `180°`. This module provides normalization, signed differences, the
//! circular mean, and an online accumulator ([`CircularWelford`]) that
//! yields the mean direction plus the standard deviation of signed
//! deviations around it — exactly the `(μᵈ, σᵈ)` pair MoLoc stores per
//! motion-database entry.

use serde::{Deserialize, Serialize};

/// Normalizes an angle in degrees into `[0, 360)`.
///
/// # Examples
///
/// ```
/// use moloc_stats::circular::normalize_deg;
/// assert_eq!(normalize_deg(370.0), 10.0);
/// assert_eq!(normalize_deg(-90.0), 270.0);
/// assert_eq!(normalize_deg(360.0), 0.0);
/// ```
pub fn normalize_deg(angle: f64) -> f64 {
    let r = angle.rem_euclid(360.0);
    // rem_euclid can return 360.0 for tiny negative inputs due to rounding.
    if r >= 360.0 {
        0.0
    } else {
        r
    }
}

/// The signed shortest rotation from `from` to `to`, in `(-180, 180]`.
///
/// # Examples
///
/// ```
/// use moloc_stats::circular::signed_diff_deg;
/// assert_eq!(signed_diff_deg(350.0, 10.0), 20.0);
/// assert_eq!(signed_diff_deg(10.0, 350.0), -20.0);
/// ```
pub fn signed_diff_deg(from: f64, to: f64) -> f64 {
    let d = normalize_deg(to - from);
    if d > 180.0 {
        d - 360.0
    } else {
        d
    }
}

/// The absolute angular distance between two directions, in `[0, 180]`.
pub fn abs_diff_deg(a: f64, b: f64) -> f64 {
    signed_diff_deg(a, b).abs()
}

/// Reverses a direction (adds 180° modulo 360°), the paper's mirror rule
/// for reassembled relative location measurements.
///
/// # Examples
///
/// ```
/// use moloc_stats::circular::reverse_deg;
/// assert_eq!(reverse_deg(30.0), 210.0);
/// assert_eq!(reverse_deg(270.0), 90.0);
/// ```
pub fn reverse_deg(angle: f64) -> f64 {
    normalize_deg(angle + 180.0)
}

/// The circular mean of directions in degrees, or `None` when the input
/// is empty or the resultant vector is (numerically) zero.
///
/// # Examples
///
/// ```
/// use moloc_stats::circular::circular_mean_deg;
/// let m = circular_mean_deg([350.0, 10.0].iter().copied()).unwrap();
/// assert!(m < 1.0 || m > 359.0);
/// ```
pub fn circular_mean_deg<I: IntoIterator<Item = f64>>(angles: I) -> Option<f64> {
    let (mut s, mut c, mut n) = (0.0, 0.0, 0u64);
    for a in angles {
        let r = a.to_radians();
        s += r.sin();
        c += r.cos();
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let (s, c) = (s / n as f64, c / n as f64);
    if s.hypot(c) < 1e-12 {
        return None;
    }
    Some(normalize_deg(s.atan2(c).to_degrees()))
}

/// Online accumulator for directional data.
///
/// Tracks the resultant vector for the circular mean and, in a second
/// conceptual pass that is folded into the same accumulation (deviations
/// around the running circular mean are not exact, so we keep raw angles
/// compressed as sin/cos sums *and* the sum of squared deviations around
/// a provisional reference), the spread of the sample.
///
/// For the motion database we need `(μᵈ, σᵈ)` with `σᵈ` measured as the
/// standard deviation of the *signed deviations* from the mean direction.
/// This accumulator stores all angles (they are few per location pair) to
/// compute that exactly; memory is bounded by the crowdsourcing volume
/// per pair, which is small by construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CircularWelford {
    angles: Vec<f64>,
}

impl CircularWelford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a direction in degrees.
    pub fn push(&mut self, angle_deg: f64) {
        self.angles.push(normalize_deg(angle_deg));
    }

    /// Number of directions pushed.
    pub fn count(&self) -> usize {
        self.angles.len()
    }

    /// The circular mean, or `None` when empty / degenerate.
    pub fn mean(&self) -> Option<f64> {
        circular_mean_deg(self.angles.iter().copied())
    }

    /// Standard deviation of signed deviations around the circular mean
    /// (population form), or `None` when the mean is undefined.
    pub fn std(&self) -> Option<f64> {
        let mean = self.mean()?;
        let n = self.angles.len() as f64;
        let ss: f64 = self
            .angles
            .iter()
            .map(|&a| signed_diff_deg(mean, a).powi(2))
            .sum();
        Some((ss / n).sqrt())
    }

    /// Iterates over the accumulated (normalized) angles.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.angles.iter().copied()
    }

    /// Retains only angles within `max_dev` degrees of the circular mean,
    /// returning how many were removed. Used by the motion database's
    /// fine-grained outlier filter.
    pub fn retain_within(&mut self, max_dev: f64) -> usize {
        let Some(mean) = self.mean() else {
            return 0;
        };
        let before = self.angles.len();
        self.angles.retain(|&a| abs_diff_deg(mean, a) <= max_dev);
        before - self.angles.len()
    }
}

impl Extend<f64> for CircularWelford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for a in iter {
            self.push(a);
        }
    }
}

impl FromIterator<f64> for CircularWelford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Self::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_handles_edge_cases() {
        assert_eq!(normalize_deg(0.0), 0.0);
        assert_eq!(normalize_deg(359.999), 359.999);
        assert_eq!(normalize_deg(720.0), 0.0);
        assert_eq!(normalize_deg(-0.0), 0.0);
        assert_eq!(normalize_deg(-720.0), 0.0);
        let tiny = normalize_deg(-1e-18);
        assert!((0.0..360.0).contains(&tiny));
    }

    #[test]
    fn signed_diff_wraps_correctly() {
        assert_eq!(signed_diff_deg(0.0, 180.0), 180.0);
        assert_eq!(signed_diff_deg(0.0, 181.0), -179.0);
        assert_eq!(signed_diff_deg(90.0, 90.0), 0.0);
        assert_eq!(signed_diff_deg(359.0, 2.0), 3.0);
    }

    #[test]
    fn reverse_is_involution() {
        for a in [0.0, 10.0, 90.0, 179.5, 180.0, 270.0, 359.0] {
            assert!((reverse_deg(reverse_deg(a)) - normalize_deg(a)).abs() < 1e-9);
        }
    }

    #[test]
    fn circular_mean_across_wraparound() {
        let m = circular_mean_deg([355.0, 5.0].iter().copied()).unwrap();
        assert!(abs_diff_deg(m, 0.0) < 1e-9);
    }

    #[test]
    fn circular_mean_of_empty_is_none() {
        assert_eq!(circular_mean_deg(std::iter::empty()), None);
    }

    #[test]
    fn circular_mean_of_opposite_directions_is_none() {
        assert_eq!(circular_mean_deg([0.0, 180.0].iter().copied()), None);
    }

    #[test]
    fn welford_mean_and_std_simple() {
        let acc: CircularWelford = [80.0, 90.0, 100.0].iter().copied().collect();
        let mean = acc.mean().unwrap();
        assert!((mean - 90.0).abs() < 1e-9);
        let std = acc.std().unwrap();
        // deviations −10, 0, +10 → population std sqrt(200/3)
        assert!((std - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn welford_handles_wraparound_spread() {
        let acc: CircularWelford = [350.0, 0.0, 10.0].iter().copied().collect();
        let mean = acc.mean().unwrap();
        assert!(abs_diff_deg(mean, 0.0) < 1e-9);
        let std = acc.std().unwrap();
        assert!((std - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn retain_within_removes_outliers() {
        let mut acc: CircularWelford = [90.0, 92.0, 88.0, 91.0, 270.0].iter().copied().collect();
        let removed = acc.retain_within(45.0);
        assert_eq!(removed, 1);
        assert_eq!(acc.count(), 4);
        assert!(abs_diff_deg(acc.mean().unwrap(), 90.25).abs() < 2.0);
    }
}
