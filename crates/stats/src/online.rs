//! Online (single-pass) statistics.
//!
//! [`Welford`] is the numerically stable mean/variance accumulator used
//! when fitting the per-pair Gaussians of the motion database and when
//! validating simulated sensors.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// # Examples
///
/// ```
/// use moloc_stats::online::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (divides by `n`); 0 with fewer than one
    /// observation.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample variance (divides by `n - 1`); 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        *self = Welford {
            count: total,
            mean,
            m2,
        };
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data = [1.0, 2.5, -3.0, 4.0, 0.5, 2.0];
        let w: Welford = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let w: Welford = [1.0, 3.0].iter().copied().collect();
        assert!((w.sample_variance() - 2.0).abs() < 1e-12);
        assert!((w.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let w: Welford = [5.0].iter().copied().collect();
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.mean(), 5.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, -4.0, 6.5, 0.25];
        let mut a: Welford = a_data.iter().copied().collect();
        let b: Welford = b_data.iter().copied().collect();
        a.merge(&b);
        let all: Welford = a_data.iter().chain(b_data.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Welford = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
