//! One-dimensional Gaussian distributions.
//!
//! The central operation for MoLoc is [`Gaussian::window_mass`], the
//! probability mass inside a window `[c - w/2, c + w/2]` — the discretized
//! integral `D_{i,j}(d)` / `O_{i,j}(o)` of the paper's Eq. 5.

use crate::erf::std_normal_cdf;
use serde::{Deserialize, Serialize};

/// Error returned when constructing a [`Gaussian`] with an invalid
/// standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStdError;

impl std::fmt::Display for InvalidStdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and positive")
    }
}

impl std::error::Error for InvalidStdError {}

/// A univariate Gaussian `N(mean, std²)`.
///
/// # Examples
///
/// ```
/// use moloc_stats::gaussian::Gaussian;
///
/// let g = Gaussian::new(0.0, 1.0)?;
/// assert!((g.cdf(0.0) - 0.5).abs() < 1e-6);
/// # Ok::<(), moloc_stats::gaussian::InvalidStdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStdError`] if `std` is not finite and strictly
    /// positive, or if `mean` is not finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, InvalidStdError> {
        if !mean.is_finite() || !std.is_finite() || std <= 0.0 {
            return Err(InvalidStdError);
        }
        Ok(Self { mean, std })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// The probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// The log probability density at `x`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        -0.5 * z * z - self.std.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    /// The cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.std)
    }

    /// Probability mass of the interval `[lo, hi]`.
    ///
    /// Returns 0 when `hi <= lo`.
    pub fn interval_mass(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Probability mass of the window `[center - width/2, center + width/2]`.
    ///
    /// This is the discretized Gaussian of MoLoc's Eq. 5: the paper's
    /// `D_{i,j}(d)` is `window_mass(d, α)` of the direction Gaussian and
    /// `O_{i,j}(o)` is `window_mass(o, β)` of the offset Gaussian.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `width` is negative.
    pub fn window_mass(&self, center: f64, width: f64) -> f64 {
        debug_assert!(width >= 0.0, "window width must be non-negative");
        self.interval_mass(center - width / 2.0, center + width / 2.0)
    }

    /// The number of standard deviations `x` lies away from the mean.
    pub fn z_score(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_std() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(0.0, f64::NAN).is_err());
        assert!(Gaussian::new(f64::INFINITY, 1.0).is_err());
        assert!(Gaussian::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn pdf_peaks_at_mean() {
        let g = Gaussian::new(3.0, 2.0).unwrap();
        assert!(g.pdf(3.0) > g.pdf(2.0));
        assert!(g.pdf(3.0) > g.pdf(4.0));
        // symmetric
        assert!((g.pdf(2.0) - g.pdf(4.0)).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_consistent_with_pdf() {
        let g = Gaussian::new(-1.5, 0.7).unwrap();
        for x in [-3.0, -1.5, 0.0, 2.0] {
            assert!((g.log_pdf(x) - g.pdf(x).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn cdf_standard_values() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((g.cdf(1.0) - 0.841_344_75).abs() < 1e-6);
        assert!((g.cdf(-1.0) - 0.158_655_25).abs() < 1e-6);
    }

    #[test]
    fn window_mass_of_full_support_is_one() {
        let g = Gaussian::new(10.0, 0.5).unwrap();
        assert!((g.window_mass(10.0, 100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_mass_two_sigma_window() {
        // Mass of [μ-σ, μ+σ] ≈ 0.6827.
        let g = Gaussian::new(5.0, 2.0).unwrap();
        assert!((g.window_mass(5.0, 4.0) - 0.682_689_49).abs() < 1e-5);
    }

    #[test]
    fn window_mass_decays_away_from_mean() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let near = g.window_mass(0.0, 1.0);
        let far = g.window_mass(3.0, 1.0);
        assert!(near > 10.0 * far);
    }

    #[test]
    fn interval_mass_empty_interval_is_zero() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        assert_eq!(g.interval_mass(1.0, 1.0), 0.0);
        assert_eq!(g.interval_mass(2.0, 1.0), 0.0);
    }

    #[test]
    fn z_score_is_linear() {
        let g = Gaussian::new(4.0, 2.0).unwrap();
        assert!((g.z_score(8.0) - 2.0).abs() < 1e-12);
        assert!((g.z_score(0.0) + 2.0).abs() < 1e-12);
    }
}
