//! A tabulated standard normal CDF for hot-path window-mass lookups.
//!
//! [`fast_std_normal_cdf`] linearly interpolates a lazily built table
//! of [`crate::erf::std_normal_cdf`] values on a uniform z-grid. The
//! motion kernel evaluates millions of Gaussian window masses per
//! evaluation run; replacing the `exp`-based rational `erfc`
//! approximation with two table reads makes that a handful of
//! arithmetic ops.
//!
//! # Accuracy
//!
//! With grid step `h = 1/512` over `[-8.5, 8.5]`, linear interpolation
//! of Φ has error at most `h²/8 · max|Φ''| = h²/8 · φ(1) ≈ 1.2e-7`
//! relative to the table's own node values. A window mass is a
//! difference of two CDF reads, so its deviation from the exact
//! `Gaussian::window_mass` is below `2.4e-7`; a product of a direction
//! and an offset mass (both ≤ 1) deviates by less than `5e-7` — inside
//! the `1e-6` tolerance the motion kernel documents. Outside the table
//! range the CDF saturates to 0/1, where `std_normal_cdf` itself is
//! within `1e-12` of the saturated value.

use crate::erf::std_normal_cdf;
use std::sync::OnceLock;

/// Half-width of the tabulated z-range.
const Z_MAX: f64 = 8.5;
/// Grid points per unit z.
const PER_UNIT: usize = 512;
/// Total grid points (17 units of z, inclusive endpoints).
const LEN: usize = 17 * PER_UNIT + 1;

fn table() -> &'static [f64; LEN] {
    static TABLE: OnceLock<Box<[f64; LEN]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0.0f64; LEN].into_boxed_slice();
        for (i, slot) in t.iter_mut().enumerate() {
            let z = -Z_MAX + i as f64 / PER_UNIT as f64;
            *slot = std_normal_cdf(z);
        }
        let boxed: Box<[f64; LEN]> = t.try_into().expect("length is LEN");
        boxed
    })
}

/// The standard normal CDF `Φ(z)` via table interpolation.
///
/// Agrees with [`std_normal_cdf`] to within `1.3e-7` everywhere (see
/// the module docs for the bound) and is several times faster.
///
/// # Examples
///
/// ```
/// let p = moloc_stats::normcdf::fast_std_normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-6);
/// ```
#[inline]
pub fn fast_std_normal_cdf(z: f64) -> f64 {
    if z <= -Z_MAX {
        return 0.0;
    }
    if z >= Z_MAX {
        return 1.0;
    }
    let t = table();
    let pos = (z + Z_MAX) * PER_UNIT as f64;
    let i = pos as usize; // pos >= 0, < LEN - 1
    let frac = pos - i as f64;
    t[i] + (t[i + 1] - t[i]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_cdf_within_documented_bound() {
        for i in -40_000..=40_000 {
            let z = i as f64 * 2.5e-4; // dense sweep of [-10, 10]
            let fast = fast_std_normal_cdf(z);
            let exact = std_normal_cdf(z);
            assert!(
                (fast - exact).abs() < 1.3e-7,
                "z = {z}: fast {fast} vs exact {exact}"
            );
        }
    }

    #[test]
    fn saturates_outside_table() {
        assert_eq!(fast_std_normal_cdf(-12.0), 0.0);
        assert_eq!(fast_std_normal_cdf(12.0), 1.0);
        assert_eq!(fast_std_normal_cdf(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_std_normal_cdf(f64::INFINITY), 1.0);
    }

    #[test]
    fn is_monotone_on_a_dense_grid() {
        let mut prev = 0.0;
        for i in -9_000..=9_000 {
            let v = fast_std_normal_cdf(i as f64 * 1e-3);
            assert!(v >= prev, "not monotone at z = {}", i as f64 * 1e-3);
            prev = v;
        }
    }
}
