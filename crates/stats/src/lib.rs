//! Statistical substrate for the MoLoc reproduction.
//!
//! This crate provides the numerical building blocks every other crate in
//! the workspace relies on:
//!
//! * [`erf`] — the error function and friends, needed for Gaussian CDFs.
//! * [`normcdf`] — a tabulated standard normal CDF for hot paths that
//!   evaluate window masses in bulk (the motion kernel).
//! * [`gaussian`] — a [`gaussian::Gaussian`] distribution type with the
//!   *windowed mass* operation that implements the discretized integrals
//!   `D_{i,j}(d)` and `O_{i,j}(o)` of MoLoc's Eq. 5.
//! * [`sampling`] — seeded Gaussian/uniform sampling (Box–Muller), so the
//!   whole simulation is reproducible without external distribution crates.
//! * [`online`] — Welford online mean/variance accumulators.
//! * [`circular`] — angle arithmetic and circular statistics in degrees,
//!   used for compass headings and motion directions.
//! * [`ecdf`] — empirical CDFs for rendering the paper's figures.
//! * [`hist`] — fixed-bin histograms.
//!
//! # Examples
//!
//! ```
//! use moloc_stats::gaussian::Gaussian;
//!
//! // The probability mass of a 20-degree window centred on the mean
//! // direction, as used by MoLoc's direction matching.
//! let g = Gaussian::new(90.0, 5.0).unwrap();
//! let mass = g.window_mass(90.0, 20.0);
//! assert!(mass > 0.95);
//! ```

pub mod circular;
pub mod ecdf;
pub mod erf;
pub mod gaussian;
pub mod hist;
pub mod normcdf;
pub mod online;
pub mod sampling;

pub use circular::{circular_mean_deg, normalize_deg, signed_diff_deg};
pub use ecdf::Ecdf;
pub use gaussian::Gaussian;
pub use online::Welford;
