//! Fixed-bin histograms.
//!
//! Used by sensor-validation tests and by the evaluation harness when
//! summarizing error distributions in textual reports.

use serde::{Deserialize, Serialize};

/// A histogram with uniform bins over `[lo, hi)`.
///
/// Samples below `lo` land in an underflow counter, samples at or above
/// `hi` in an overflow counter, so no observation is silently dropped.
///
/// # Examples
///
/// ```
/// use moloc_stats::hist::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.push(1.0);
/// h.push(9.5);
/// h.push(-3.0);
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// Error constructing a [`Histogram`] with invalid bounds or zero bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidHistogramError;

impl std::fmt::Display for InvalidHistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "histogram needs lo < hi (finite) and at least one bin")
    }
}

impl std::error::Error for InvalidHistogramError {}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidHistogramError`] if `lo >= hi`, the bounds are not
    /// finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, InvalidHistogramError> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi || bins == 0 {
            return Err(InvalidHistogramError);
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// The index of the most populated bin, ties broken low; `None` when
    /// all in-range bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &max) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))?;
        if max == 0 {
            None
        } else {
            Some(idx)
        }
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_bounds() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for x in [0.0, 0.99, 1.0, 2.5, 3.999] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn upper_bound_is_exclusive() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.push(4.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn total_includes_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend([-1.0, 0.5, 2.0]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_edges_are_uniform() {
        let h = Histogram::new(2.0, 6.0, 4).unwrap();
        assert_eq!(h.bin_edges(0), (2.0, 3.0));
        assert_eq!(h.bin_edges(3), (5.0, 6.0));
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.extend([0.5, 1.5, 1.6, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
        let empty = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(empty.mode_bin(), None);
    }
}
