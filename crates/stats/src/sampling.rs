//! Seeded random sampling helpers.
//!
//! Gaussian variates are produced with the Box–Muller transform so the
//! workspace does not need `rand_distr`; every simulator in the
//! reproduction draws noise through these helpers with an explicit seeded
//! RNG, making runs bit-for-bit reproducible.

use rand::Rng;

/// Draws a standard normal variate via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = moloc_stats::sampling::std_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from `N(mean, std²)`.
///
/// # Panics
///
/// Panics in debug builds if `std` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    debug_assert!(std >= 0.0, "std must be non-negative");
    mean + std * std_normal(rng)
}

/// Draws a uniform variate in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi})");
    if lo == hi {
        return lo;
    }
    rng.gen_range(lo..hi)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to give every (trace, sensor, access point, …) its own
/// deterministic RNG stream: the splitting is a simple 64-bit mix
/// (SplitMix64 finalizer) of the parent seed and the label.
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(label)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut acc = Welford::new();
        for _ in 0..200_000 {
            acc.push(std_normal(&mut rng));
        }
        assert!(acc.mean().abs() < 0.01, "mean {}", acc.mean());
        assert!((acc.std() - 1.0).abs() < 0.01, "std {}", acc.std());
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = Welford::new();
        for _ in 0..100_000 {
            acc.push(normal(&mut rng, 5.0, 2.0));
        }
        assert!((acc.mean() - 5.0).abs() < 0.05);
        assert!((acc.std() - 2.0).abs() < 0.05);
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(normal(&mut rng, 3.0, 0.0), 3.0);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(uniform(&mut rng, 1.5, 1.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn uniform_panics_on_inverted_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = uniform(&mut rng, 1.0, 0.0);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
        // Labels differing by one should produce wildly different seeds.
        let a = derive_seed(99, 0);
        let b = derive_seed(99, 1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..16).map(|_| std_normal(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
