//! Empirical cumulative distribution functions.
//!
//! The paper reports its results almost exclusively as CDFs of errors
//! (Figs. 6, 7, 8). [`Ecdf`] stores a sorted sample and answers quantile
//! and `P(X ≤ x)` queries, and renders the `(x, F(x))` series used by the
//! reproduction's figure output.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// # Examples
///
/// ```
/// use moloc_stats::ecdf::Ecdf;
///
/// let e = Ecdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(e.len(), 4);
/// assert_eq!(e.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(e.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, sorting the samples. Non-finite samples (NaN,
    /// ±∞) carry no distributional information and are dropped, so a
    /// single corrupted error value degrades one sample instead of
    /// panicking an entire experiment run.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of samples `≤ x` (the CDF value at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]` using the nearest-rank method,
    /// or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// The median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The sample minimum.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// The sample maximum.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Renders the CDF as `n` evenly spaced `(x, F(x))` points spanning
    /// `[0, max]` (or `[min, max]` when `from_zero` is false) — the series
    /// plotted in the paper's figures.
    pub fn series(&self, n: usize, from_zero: bool) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = if from_zero {
            0.0
        } else {
            self.min().expect("non-empty")
        };
        let hi = self.max().expect("non-empty");
        if n == 1 || hi <= lo {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_samples(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_counts_inclusively() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::from_samples(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(0.75), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
    }

    #[test]
    fn median_of_odd_sample() {
        let e = Ecdf::from_samples(vec![5.0, 1.0, 9.0]);
        assert_eq!(e.median(), Some(5.0));
    }

    #[test]
    fn empty_ecdf_behaves() {
        let e = Ecdf::default();
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert!(e.series(10, true).is_empty());
    }

    #[test]
    fn drops_non_finite_samples_instead_of_panicking() {
        let e = Ecdf::from_samples(vec![
            3.0,
            f64::NAN,
            1.0,
            f64::INFINITY,
            2.0,
            f64::NEG_INFINITY,
        ]);
        assert_eq!(e.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(e.median(), Some(2.0));
    }

    #[test]
    fn all_nan_input_yields_an_empty_ecdf() {
        let e = Ecdf::from_samples(vec![f64::NAN, f64::NAN]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
    }

    #[test]
    fn series_is_monotone_and_ends_at_one() {
        let e: Ecdf = (0..50).map(|i| (i as f64 * 37.0) % 11.0).collect();
        let s = e.series(20, true);
        assert_eq!(s.len(), 20);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF series not monotone");
            assert!(w[1].0 >= w[0].0, "x series not monotone");
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn series_degenerate_sample() {
        let e = Ecdf::from_samples(vec![2.0, 2.0]);
        let s = e.series(5, false);
        assert_eq!(s, vec![(2.0, 1.0)]);
    }

    #[test]
    fn mean_and_extremes() {
        let e = Ecdf::from_samples(vec![2.0, 4.0, 9.0]);
        assert_eq!(e.min(), Some(2.0));
        assert_eq!(e.max(), Some(9.0));
        assert!((e.mean().unwrap() - 5.0).abs() < 1e-12);
    }
}
