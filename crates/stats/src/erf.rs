//! The error function and related special functions.
//!
//! Implemented in-house (rational approximation due to W. J. Cody, as
//! popularized by Numerical Recipes' `erfc`) so the workspace needs no
//! external special-function crate. Absolute error is below `1.2e-7`,
//! far tighter than anything the localization pipeline is sensitive to.

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses a Chebyshev-fitted rational approximation with absolute error
/// `< 1.2e-7` everywhere.
///
/// # Examples
///
/// ```
/// let v = moloc_stats::erf::erfc(0.0);
/// assert!((v - 1.0).abs() < 1e-6);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Horner form of the Numerical Recipes coefficients.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The error function `erf(x)`.
///
/// # Examples
///
/// ```
/// // erf is odd and saturates to ±1.
/// assert!(moloc_stats::erf::erf(10.0) > 0.999_999);
/// assert!((moloc_stats::erf::erf(-0.5) + moloc_stats::erf::erf(0.5)).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// let p = moloc_stats::erf::std_normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-6);
/// ```
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_89),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (3.0, 0.999_977_909_503_001_4),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REFERENCE {
            let got = erf(x);
            assert!((got - want).abs() < 2e-7, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        // Structural oddness is exact for x != 0; at x == 0 the rational
        // approximation leaves a residual of ~1e-7.
        for i in 0..100 {
            let x = i as f64 * 0.07;
            assert!((erf(x) + erf(-x)).abs() < 5e-7);
        }
    }

    #[test]
    fn erfc_plus_erf_is_one() {
        for i in -50..=50 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_is_monotone_increasing() {
        let mut prev = erf(-6.0);
        for i in -59..=60 {
            let v = erf(i as f64 * 0.1);
            assert!(v >= prev, "erf not monotone at {}", i as f64 * 0.1);
            prev = v;
        }
    }

    #[test]
    fn std_normal_cdf_quartiles() {
        // Φ(0.6745) ≈ 0.75
        assert!((std_normal_cdf(0.674_489_75) - 0.75).abs() < 1e-6);
        // Φ(-1.96) ≈ 0.025
        assert!((std_normal_cdf(-1.959_963_98) - 0.025).abs() < 1e-6);
    }

    #[test]
    fn std_normal_cdf_saturates() {
        assert!(std_normal_cdf(9.0) > 1.0 - 1e-12);
        assert!(std_normal_cdf(-9.0) < 1e-12);
    }
}
