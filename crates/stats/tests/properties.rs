//! Property-based tests for the statistical substrate.

use moloc_stats::circular::{
    abs_diff_deg, circular_mean_deg, normalize_deg, reverse_deg, signed_diff_deg,
};
use moloc_stats::ecdf::Ecdf;
use moloc_stats::erf::{erf, std_normal_cdf};
use moloc_stats::gaussian::Gaussian;
use moloc_stats::online::Welford;
use proptest::prelude::*;

fn finite_angle() -> impl Strategy<Value = f64> {
    -1e4..1e4f64
}

proptest! {
    #[test]
    fn normalize_lands_in_range(a in finite_angle()) {
        let n = normalize_deg(a);
        prop_assert!((0.0..360.0).contains(&n), "normalize({a}) = {n}");
    }

    #[test]
    fn normalize_is_idempotent(a in finite_angle()) {
        let once = normalize_deg(a);
        prop_assert!((normalize_deg(once) - once).abs() < 1e-9);
    }

    #[test]
    fn signed_diff_in_half_open_range(a in finite_angle(), b in finite_angle()) {
        let d = signed_diff_deg(a, b);
        prop_assert!(d > -180.0 - 1e-9 && d <= 180.0 + 1e-9, "diff {d}");
    }

    #[test]
    fn signed_diff_is_antisymmetric_mod_360(a in 0.0..360.0f64, b in 0.0..360.0f64) {
        let ab = signed_diff_deg(a, b);
        let ba = signed_diff_deg(b, a);
        // ab = -ba except at exactly ±180 where both are +180.
        let sum = normalize_deg(ab + ba);
        prop_assert!(sum < 1e-9 || (sum - 360.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn reverse_twice_is_identity(a in finite_angle()) {
        let r = reverse_deg(reverse_deg(a));
        prop_assert!(abs_diff_deg(r, normalize_deg(a)) < 1e-9);
    }

    #[test]
    fn abs_diff_symmetric_and_bounded(a in finite_angle(), b in finite_angle()) {
        let d1 = abs_diff_deg(a, b);
        let d2 = abs_diff_deg(b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=180.0 + 1e-9).contains(&d1));
    }

    #[test]
    fn circular_mean_rotation_equivariance(
        angles in prop::collection::vec(0.0..360.0f64, 1..20),
        shift in 0.0..360.0f64,
    ) {
        // Rotating every input rotates the mean (when defined).
        if let Some(m) = circular_mean_deg(angles.iter().copied()) {
            let shifted = circular_mean_deg(angles.iter().map(|a| a + shift));
            if let Some(ms) = shifted {
                prop_assert!(
                    abs_diff_deg(ms, normalize_deg(m + shift)) < 1e-6,
                    "mean {m}, shifted {ms}"
                );
            }
        }
    }

    #[test]
    fn erf_is_bounded_and_monotone(a in -6.0..6.0f64, b in -6.0..6.0f64) {
        prop_assert!((-1.0..=1.0).contains(&erf(a)));
        if a < b {
            prop_assert!(erf(a) <= erf(b) + 1e-12);
        }
    }

    #[test]
    fn normal_cdf_is_a_cdf(x in -8.0..8.0f64, dx in 0.0..4.0f64) {
        let lo = std_normal_cdf(x);
        let hi = std_normal_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!(hi + 1e-12 >= lo);
    }

    #[test]
    fn gaussian_window_mass_is_probability(
        mean in -100.0..100.0f64,
        std in 0.01..50.0f64,
        center in -200.0..200.0f64,
        width in 0.0..500.0f64,
    ) {
        let g = Gaussian::new(mean, std).unwrap();
        let m = g.window_mass(center, width);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&m), "mass {m}");
    }

    #[test]
    fn gaussian_window_mass_monotone_in_width(
        mean in -10.0..10.0f64,
        std in 0.1..5.0f64,
        center in -20.0..20.0f64,
        w1 in 0.0..30.0f64,
        w2 in 0.0..30.0f64,
    ) {
        let g = Gaussian::new(mean, std).unwrap();
        let (small, large) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(g.window_mass(center, small) <= g.window_mass(center, large) + 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential(
        xs in prop::collection::vec(-1e3..1e3f64, 0..40),
        ys in prop::collection::vec(-1e3..1e3f64, 0..40),
    ) {
        let mut merged: Welford = xs.iter().copied().collect();
        let other: Welford = ys.iter().copied().collect();
        merged.merge(&other);
        let all: Welford = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - all.variance()).abs() < 1e-6);
    }

    #[test]
    fn ecdf_is_monotone_and_normalized(samples in prop::collection::vec(-1e3..1e3f64, 1..60)) {
        let e = Ecdf::from_samples(samples.clone());
        prop_assert_eq!(e.fraction_at_or_below(e.max().unwrap()), 1.0);
        prop_assert_eq!(e.fraction_at_or_below(e.min().unwrap() - 1.0), 0.0);
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = i as f64 * 100.0;
            let f = e.fraction_at_or_below(x);
            prop_assert!(f + 1e-12 >= prev);
            prev = f;
        }
    }

    #[test]
    fn ecdf_quantiles_are_sample_values(samples in prop::collection::vec(-1e3..1e3f64, 1..60), q in 0.0..=1.0f64) {
        let e = Ecdf::from_samples(samples.clone());
        let v = e.quantile(q).unwrap();
        prop_assert!(samples.iter().any(|&s| (s - v).abs() < 1e-12));
    }
}
