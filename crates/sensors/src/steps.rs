//! Walking detection and step (peak) detection.
//!
//! Steps manifest as periodic peaks in the accelerometer magnitude
//! (Fig. 4 marks one cross per step). [`StepDetector`] implements the
//! classic pipeline: smooth, test for walking via signal variance, then
//! find peaks above an adaptive threshold with a refractory period.

use crate::filter::moving_average_into;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// A detected step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepEvent {
    /// Time of the step's acceleration peak, in seconds.
    pub time: f64,
    /// Peak magnitude in m/s².
    pub magnitude: f64,
}

/// Peak-based step detector.
///
/// # Examples
///
/// ```
/// use moloc_sensors::accel::GaitSynthesizer;
/// use moloc_sensors::steps::StepDetector;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let s = GaitSynthesizer::default().synthesize_walk(8, 0.5, 10.0, &mut rng);
/// let steps = StepDetector::default().detect(&s);
/// assert!((steps.len() as i64 - 8).abs() <= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDetector {
    /// Smoothing window in samples (moving average) applied before peak
    /// search.
    pub smooth_window: usize,
    /// Minimum variance of the (smoothed) signal for the segment to
    /// count as walking, in (m/s²)².
    pub walking_variance_threshold: f64,
    /// Minimum peak prominence above the segment mean, as a fraction of
    /// the segment's standard deviation.
    pub peak_threshold_sigma: f64,
    /// Minimum time between two steps, in seconds (refractory period).
    pub min_step_interval_s: f64,
}

impl Default for StepDetector {
    fn default() -> Self {
        Self {
            smooth_window: 3,
            walking_variance_threshold: 0.5,
            peak_threshold_sigma: 0.5,
            min_step_interval_s: 0.3,
        }
    }
}

impl StepDetector {
    /// Whether the segment looks like walking (enough signal energy).
    ///
    /// Judged on the *raw* magnitude: smoothing attenuates fast
    /// cadences (a 0.4 s stride sampled at 10 Hz loses most of its
    /// amplitude to a 3-sample average), and the walking decision must
    /// not depend on that.
    pub fn is_walking(&self, series: &TimeSeries) -> bool {
        if series.len() < 4 {
            return false;
        }
        series.variance().unwrap_or(0.0) >= self.walking_variance_threshold
    }

    /// Detects steps; returns an empty vector when the segment does not
    /// look like walking.
    pub fn detect(&self, series: &TimeSeries) -> Vec<StepEvent> {
        let mut smoothed = TimeSeries::default();
        let mut out = Vec::new();
        self.detect_into(series, &mut smoothed, &mut out);
        out
    }

    /// [`StepDetector::detect`] into caller-owned buffers: `smoothed`
    /// holds the filtered signal and `out` the detected steps, both
    /// cleared first. Interval loops reuse the same scratch so a whole
    /// trace of detections allocates only on buffer growth.
    pub fn detect_into(
        &self,
        series: &TimeSeries,
        smoothed: &mut TimeSeries,
        out: &mut Vec<StepEvent>,
    ) {
        out.clear();
        if !self.is_walking(series) {
            return;
        }
        moving_average_into(series, self.smooth_window, smoothed);
        // Empty/degenerate smoothed output (a pathological gap series
        // can shrink to nothing) yields no steps rather than a panic.
        let (Some(mean), Some(variance)) = (smoothed.mean(), smoothed.variance()) else {
            return;
        };
        let threshold = mean + self.peak_threshold_sigma * variance.sqrt();

        let v = smoothed.values();
        let mut last_step_time = f64::NEG_INFINITY;
        for i in 1..v.len().saturating_sub(1) {
            let is_peak = v[i] >= v[i - 1] && v[i] > v[i + 1] && v[i] > threshold;
            if !is_peak {
                continue;
            }
            let t = smoothed.time_at(i);
            if t - last_step_time < self.min_step_interval_s {
                // Keep the taller of two peaks inside the refractory
                // window.
                if let Some(last) = out.last_mut() {
                    let last: &mut StepEvent = last;
                    if v[i] > last.magnitude {
                        *last = StepEvent {
                            time: t,
                            magnitude: v[i],
                        };
                        last_step_time = t;
                    }
                }
                continue;
            }
            out.push(StepEvent {
                time: t,
                magnitude: v[i],
            });
            last_step_time = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::GaitSynthesizer;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth() -> GaitSynthesizer {
        GaitSynthesizer::default()
    }

    #[test]
    fn detects_ten_steps_like_fig4() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = synth().synthesize_walk(10, 0.5, 10.0, &mut rng);
        let steps = StepDetector::default().detect(&s);
        assert!(
            (steps.len() as i64 - 10).abs() <= 1,
            "detected {} steps",
            steps.len()
        );
    }

    #[test]
    fn step_intervals_match_period() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = synth().synthesize_walk(12, 0.6, 20.0, &mut rng);
        let steps = StepDetector::default().detect(&s);
        assert!(steps.len() >= 10);
        for w in steps.windows(2) {
            let dt = w[1].time - w[0].time;
            assert!((dt - 0.6).abs() < 0.2, "interval {dt}");
        }
    }

    #[test]
    fn idle_detects_no_steps() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = synth().synthesize_idle(10.0, 10.0, &mut rng);
        let det = StepDetector::default();
        assert!(!det.is_walking(&s));
        assert!(det.detect(&s).is_empty());
    }

    #[test]
    fn tiny_series_detects_nothing() {
        let det = StepDetector::default();
        let s = TimeSeries::new(0.0, 10.0, vec![9.8, 12.0]).unwrap();
        assert!(!det.is_walking(&s));
        assert!(det.detect(&s).is_empty());
    }

    #[test]
    fn empty_and_single_sample_series_detect_nothing() {
        let det = StepDetector::default();
        for s in [
            TimeSeries::default(),
            TimeSeries::new(0.0, 10.0, vec![]).unwrap(),
            TimeSeries::new(0.0, 10.0, vec![11.0]).unwrap(),
        ] {
            assert!(!det.is_walking(&s));
            assert!(det.detect(&s).is_empty());
        }
    }

    #[test]
    fn all_nan_series_detects_nothing() {
        // A fully-gapped sensor stream has NaN variance: the walking
        // test must fail it, not poison the peak threshold.
        let det = StepDetector::default();
        let s = TimeSeries::new(0.0, 10.0, vec![f64::NAN; 40]).unwrap();
        assert!(!det.is_walking(&s));
        assert!(det.detect(&s).is_empty());
    }

    #[test]
    fn noise_robustness() {
        let noisy = GaitSynthesizer {
            noise: NoiseModel::new(0.0, 0.8),
            ..GaitSynthesizer::default()
        };
        let mut rng = StdRng::seed_from_u64(17);
        let s = noisy.synthesize_walk(20, 0.5, 10.0, &mut rng);
        let steps = StepDetector::default().detect(&s);
        assert!(
            (steps.len() as i64 - 20).abs() <= 2,
            "detected {} steps under noise",
            steps.len()
        );
    }

    #[test]
    fn detection_works_at_different_cadences() {
        let det = StepDetector::default();
        for (period, n) in [(0.4, 15), (0.5, 12), (0.7, 9)] {
            let mut rng = StdRng::seed_from_u64(23);
            let s = synth().synthesize_walk(n, period, 10.0, &mut rng);
            let steps = det.detect(&s);
            assert!(
                (steps.len() as i64 - n as i64).abs() <= 1,
                "period {period}: detected {} of {n}",
                steps.len()
            );
        }
    }
}
