//! IMU substrate for the MoLoc reproduction.
//!
//! The paper samples a Nexus S accelerometer and digital compass at
//! 10 Hz; this crate provides both the *synthesis* of such signals (for
//! the simulated walkers) and the *processing* the MoLoc prototype
//! performs on them:
//!
//! * [`series`] — uniformly sampled time series.
//! * [`noise`] — additive sensor noise models (bias + white noise).
//! * [`accel`] — synthetic gait accelerometer magnitude, reproducing the
//!   repetitive per-step signature of the paper's Fig. 4.
//! * [`steps`] — walking detection and per-step peak detection.
//! * [`counting`] — Discrete Step Counting (DSC) and the paper's
//!   Continuous Step Counting (CSC) with *decimal steps* (Sec. IV-B1).
//! * [`stride`] — step length from user height/weight (Constandache et
//!   al., reference 25 of the paper).
//! * [`compass`] — synthetic compass readings with placement offset.
//! * [`heading`] — Zee-style placement-independent heading-offset
//!   estimation and motion-direction extraction.
//! * [`filter`] — smoothing filters (moving average, exponential,
//!   median, and a 1-D Kalman filter).
//! * [`gyro`] / [`fusion`] — the paper's future-work extension:
//!   synthetic gyroscope turn rates and Kalman compass–gyro heading
//!   fusion.
//!
//! # Examples
//!
//! ```
//! use moloc_sensors::accel::GaitSynthesizer;
//! use moloc_sensors::steps::StepDetector;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // 10 steps of 0.5 s at 10 Hz, as in the paper's Fig. 4.
//! let series = GaitSynthesizer::default().synthesize_walk(10, 0.5, 10.0, &mut rng);
//! let steps = StepDetector::default().detect(&series);
//! assert!((steps.len() as i64 - 10).abs() <= 1);
//! ```

pub mod accel;
pub mod compass;
pub mod counting;
pub mod filter;
pub mod fusion;
pub mod gyro;
pub mod heading;
pub mod noise;
pub mod series;
pub mod steps;
pub mod stride;

pub use series::TimeSeries;
