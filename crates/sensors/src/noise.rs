//! Additive sensor noise models.
//!
//! Real MEMS sensors carry a constant bias plus white measurement noise;
//! the paper's data-sanitation stage exists precisely because of these.
//! [`NoiseModel`] injects both into a clean synthesized signal.

use crate::series::TimeSeries;
use moloc_stats::sampling::normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bias + white Gaussian noise.
///
/// # Examples
///
/// ```
/// use moloc_sensors::noise::NoiseModel;
/// use moloc_sensors::series::TimeSeries;
/// use rand::SeedableRng;
///
/// let clean = TimeSeries::new(0.0, 10.0, vec![0.0; 100]).unwrap();
/// let model = NoiseModel::new(1.0, 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let noisy = model.apply(&clean, &mut rng);
/// assert!(noisy.values().iter().all(|&v| (v - 1.0).abs() < 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Constant additive bias.
    pub bias: f64,
    /// White noise standard deviation.
    pub white_sigma: f64,
}

impl NoiseModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `white_sigma` is negative.
    pub fn new(bias: f64, white_sigma: f64) -> Self {
        assert!(white_sigma >= 0.0, "noise sigma must be non-negative");
        Self { bias, white_sigma }
    }

    /// A noiseless identity model.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Applies the model to a series.
    pub fn apply<R: Rng + ?Sized>(&self, series: &TimeSeries, rng: &mut R) -> TimeSeries {
        series.map(|v| v + self.bias + normal(rng, 0.0, self.white_sigma))
    }

    /// Applies the model to a single value.
    pub fn apply_value<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.bias + normal(rng, 0.0, self.white_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_stats::online::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_model_is_identity() {
        let s = TimeSeries::new(0.0, 10.0, vec![1.0, -2.0, 3.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoiseModel::clean().apply(&s, &mut rng), s);
    }

    #[test]
    fn bias_shifts_and_sigma_spreads() {
        let s = TimeSeries::new(0.0, 10.0, vec![0.0; 50_000]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = NoiseModel::new(2.0, 0.5).apply(&s, &mut rng);
        let acc: Welford = noisy.values().iter().copied().collect();
        assert!((acc.mean() - 2.0).abs() < 0.02);
        assert!((acc.std() - 0.5).abs() < 0.02);
    }

    #[test]
    fn apply_value_matches_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = NoiseModel::new(3.0, 0.0).apply_value(1.0, &mut rng);
        assert_eq!(v, 4.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = NoiseModel::new(0.0, -0.1);
    }
}
