//! Synthetic digital-compass readings.
//!
//! Compass readings reflect *phone orientation*, not motion direction
//! (Sec. IV-B1): a user texting holds the phone roughly along her
//! heading, but a user on a call may point it anywhere. The synthesizer
//! models this as a per-trace constant *placement offset* plus a
//! constant hard-iron-like bias and white noise, all wrapped to
//! `[0, 360)`.

use crate::series::TimeSeries;
use moloc_stats::circular::normalize_deg;
use moloc_stats::sampling::normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Synthesizes compass readings from true motion headings.
///
/// # Examples
///
/// ```
/// use moloc_sensors::compass::CompassSynthesizer;
/// use moloc_sensors::series::TimeSeries;
/// use rand::SeedableRng;
///
/// let truth = TimeSeries::new(0.0, 10.0, vec![90.0; 20]).unwrap();
/// let compass = CompassSynthesizer::new(30.0, 2.0, 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let readings = compass.synthesize(&truth, &mut rng);
/// // Readings sit near heading + placement offset.
/// assert!((readings.values()[0] - 120.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompassSynthesizer {
    /// Constant offset between phone orientation and motion direction,
    /// in degrees (per-trace; depends on how the phone is held).
    pub placement_offset_deg: f64,
    /// White noise standard deviation in degrees.
    pub noise_sigma_deg: f64,
    /// Constant magnetic bias in degrees (hard-iron distortion of the
    /// specific device; the paper observed 10–20° reversal bias).
    pub bias_deg: f64,
}

impl CompassSynthesizer {
    /// Creates a synthesizer.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma_deg` is negative.
    pub fn new(placement_offset_deg: f64, noise_sigma_deg: f64, bias_deg: f64) -> Self {
        assert!(noise_sigma_deg >= 0.0, "noise sigma must be non-negative");
        Self {
            placement_offset_deg,
            noise_sigma_deg,
            bias_deg,
        }
    }

    /// An ideal compass: reading equals motion heading.
    pub fn ideal() -> Self {
        Self {
            placement_offset_deg: 0.0,
            noise_sigma_deg: 0.0,
            bias_deg: 0.0,
        }
    }

    /// One reading given the true motion heading.
    pub fn read<R: Rng + ?Sized>(&self, true_heading_deg: f64, rng: &mut R) -> f64 {
        normalize_deg(
            true_heading_deg
                + self.placement_offset_deg
                + self.bias_deg
                + normal(rng, 0.0, self.noise_sigma_deg),
        )
    }

    /// A reading series from a true-heading series (same timing).
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        true_headings: &TimeSeries,
        rng: &mut R,
    ) -> TimeSeries {
        true_headings.map(|h| self.read(h, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_stats::circular::{abs_diff_deg, circular_mean_deg};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_compass_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = CompassSynthesizer::ideal();
        assert_eq!(c.read(123.4, &mut rng), 123.4);
    }

    #[test]
    fn readings_are_wrapped() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = CompassSynthesizer::new(40.0, 0.0, 0.0);
        let r = c.read(350.0, &mut rng);
        assert!((r - 30.0).abs() < 1e-9);
        assert!((0.0..360.0).contains(&r));
    }

    #[test]
    fn mean_reading_reflects_offset_and_bias() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = CompassSynthesizer::new(25.0, 8.0, 10.0);
        let readings: Vec<f64> = (0..5000).map(|_| c.read(90.0, &mut rng)).collect();
        let mean = circular_mean_deg(readings.iter().copied()).unwrap();
        assert!(abs_diff_deg(mean, 125.0) < 1.0, "mean {mean}");
    }

    #[test]
    fn synthesize_preserves_timing() {
        let truth = TimeSeries::new(2.0, 10.0, vec![45.0; 30]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = CompassSynthesizer::new(0.0, 1.0, 0.0).synthesize(&truth, &mut rng);
        assert_eq!(out.len(), 30);
        assert_eq!(out.t0(), 2.0);
        assert_eq!(out.sample_rate_hz(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_panics() {
        let _ = CompassSynthesizer::new(0.0, -1.0, 0.0);
    }
}
