//! Smoothing filters.
//!
//! The step detector smooths the raw magnitude; the paper's future-work
//! section mentions Kalman-filtered gyroscope headings, which the
//! reproduction offers as an extension via [`Kalman1D`].

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Centered moving average with the given window (in samples). A window
/// of 0 or 1 returns the input unchanged; even windows are rounded up to
/// the next odd size so the filter stays centered.
pub fn moving_average(series: &TimeSeries, window: usize) -> TimeSeries {
    let mut out = TimeSeries::default();
    moving_average_into(series, window, &mut out);
    out
}

/// [`moving_average`] into a caller-owned series, reusing its buffer.
/// `out`'s previous contents are discarded.
pub fn moving_average_into(series: &TimeSeries, window: usize, out: &mut TimeSeries) {
    let v = series.values();
    if window <= 1 || series.is_empty() {
        out.assign(series.t0(), series.sample_rate_hz(), v.iter().copied())
            .expect("rate unchanged");
        return;
    }
    let half = window / 2;
    out.assign(
        series.t0(),
        series.sample_rate_hz(),
        (0..v.len()).map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(v.len());
            v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        }),
    )
    .expect("rate unchanged");
}

/// First-order exponential smoothing: `y[i] = α·x[i] + (1−α)·y[i−1]`.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
pub fn exponential(series: &TimeSeries, alpha: f64) -> TimeSeries {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut prev = None;
    series.map(|x| {
        let y = match prev {
            None => x,
            Some(p) => alpha * x + (1.0 - alpha) * p,
        };
        prev = Some(y);
        y
    })
}

/// Centered median filter with the given window (odd sizes; even sizes
/// behave like the next odd size).
pub fn median(series: &TimeSeries, window: usize) -> TimeSeries {
    if window <= 1 || series.is_empty() {
        return series.clone();
    }
    let half = window / 2;
    let v = series.values();
    let out: Vec<f64> = (0..v.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(v.len());
            let mut w: Vec<f64> = v[lo..hi].to_vec();
            // `total_cmp` keeps the sort well-defined when a sensor gap
            // leaks NaN into the window (NaN sorts above +∞, so finite
            // neighbors still win the middle slot when they outnumber
            // the corrupted samples).
            w.sort_by(f64::total_cmp);
            w[w.len() / 2]
        })
        .collect();
    TimeSeries::new(series.t0(), series.sample_rate_hz(), out).expect("rate unchanged")
}

/// A 1-D constant-state Kalman filter (random-walk model).
///
/// # Examples
///
/// ```
/// use moloc_sensors::filter::Kalman1D;
///
/// let mut kf = Kalman1D::new(0.01, 1.0);
/// for _ in 0..50 {
///     kf.update(5.0);
/// }
/// assert!((kf.estimate().unwrap() - 5.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kalman1D {
    process_var: f64,
    measurement_var: f64,
    state: Option<(f64, f64)>, // (estimate, error covariance)
}

impl Kalman1D {
    /// Creates a filter with process variance `q` and measurement
    /// variance `r`.
    ///
    /// # Panics
    ///
    /// Panics unless both variances are positive.
    pub fn new(process_var: f64, measurement_var: f64) -> Self {
        assert!(
            process_var > 0.0 && measurement_var > 0.0,
            "variances must be positive"
        );
        Self {
            process_var,
            measurement_var,
            state: None,
        }
    }

    /// Incorporates one measurement and returns the new estimate.
    pub fn update(&mut self, measurement: f64) -> f64 {
        let (est, p) = match self.state {
            None => (measurement, self.measurement_var),
            Some((est, p)) => {
                let p_pred = p + self.process_var;
                let k = p_pred / (p_pred + self.measurement_var);
                (est + k * (measurement - est), (1.0 - k) * p_pred)
            }
        };
        self.state = Some((est, p));
        est
    }

    /// The current estimate, `None` before the first update.
    pub fn estimate(&self) -> Option<f64> {
        self.state.map(|(e, _)| e)
    }

    /// Filters a whole series.
    pub fn filter_series(mut self, series: &TimeSeries) -> TimeSeries {
        series.map(|x| self.update(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(0.0, 10.0, values).unwrap()
    }

    #[test]
    fn moving_average_smooths_spike() {
        let out = moving_average(&s(vec![0.0, 0.0, 9.0, 0.0, 0.0]), 3);
        assert_eq!(out.values()[2], 3.0);
        assert_eq!(out.values()[0], 0.0);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let input = s(vec![1.0, 2.0, 3.0]);
        assert_eq!(moving_average(&input, 1), input);
        assert_eq!(moving_average(&input, 0), input);
    }

    #[test]
    fn moving_average_preserves_constant() {
        let input = s(vec![4.0; 10]);
        let out = moving_average(&input, 5);
        assert!(out.values().iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn exponential_converges_to_constant() {
        let out = exponential(&s(vec![10.0; 100]), 0.2);
        assert!((out.values()[99] - 10.0).abs() < 1e-9);
        assert_eq!(out.values()[0], 10.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn exponential_rejects_zero_alpha() {
        let _ = exponential(&s(vec![1.0]), 0.0);
    }

    #[test]
    fn median_removes_impulse() {
        let out = median(&s(vec![1.0, 1.0, 99.0, 1.0, 1.0]), 3);
        assert_eq!(out.values()[2], 1.0);
    }

    #[test]
    fn median_tolerates_nan_samples() {
        // A dropped sensor sample rendered as NaN must not panic the
        // sort; windows where finite samples hold the majority still
        // produce a finite median.
        let out = median(&s(vec![1.0, f64::NAN, 2.0, 2.0, 3.0]), 3);
        assert_eq!(out.len(), 5);
        assert_eq!(out.values()[2], 2.0);
        assert_eq!(out.values()[3], 2.0);
    }

    #[test]
    fn kalman_tracks_constant_with_noise() {
        let mut kf = Kalman1D::new(1e-4, 0.5);
        let noisy = [4.8, 5.3, 5.1, 4.7, 5.2, 5.0, 4.9, 5.1];
        let mut last = 0.0;
        for m in noisy {
            last = kf.update(m);
        }
        assert!((last - 5.0).abs() < 0.2);
    }

    #[test]
    fn kalman_first_update_is_measurement() {
        let mut kf = Kalman1D::new(0.1, 1.0);
        assert_eq!(kf.estimate(), None);
        assert_eq!(kf.update(3.5), 3.5);
        assert_eq!(kf.estimate(), Some(3.5));
    }

    #[test]
    fn kalman_filters_series() {
        let kf = Kalman1D::new(0.01, 1.0);
        let out = kf.filter_series(&s(vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(out.len(), 4);
        assert!((out.values()[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn kalman_rejects_zero_variance() {
        let _ = Kalman1D::new(0.0, 1.0);
    }
}
