//! Uniformly sampled time series.

use serde::{Deserialize, Serialize};

/// A uniformly sampled scalar signal.
///
/// # Examples
///
/// ```
/// use moloc_sensors::series::TimeSeries;
///
/// let s = TimeSeries::new(0.0, 10.0, vec![1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(s.sample_rate_hz(), 10.0);
/// assert!((s.time_at(2) - 0.2).abs() < 1e-12);
/// assert!((s.duration() - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    t0: f64,
    sample_rate_hz: f64,
    values: Vec<f64>,
}

/// Error constructing a [`TimeSeries`] with a non-positive sample rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRateError;

impl std::fmt::Display for InvalidRateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sample rate must be finite and positive")
    }
}

impl std::error::Error for InvalidRateError {}

impl TimeSeries {
    /// Creates a series starting at `t0` seconds with the given sample
    /// rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] if the rate is not finite and
    /// positive.
    pub fn new(t0: f64, sample_rate_hz: f64, values: Vec<f64>) -> Result<Self, InvalidRateError> {
        if !sample_rate_hz.is_finite() || sample_rate_hz <= 0.0 {
            return Err(InvalidRateError);
        }
        Ok(Self {
            t0,
            sample_rate_hz,
            values,
        })
    }

    /// Replaces the series in place — start time, rate, and values —
    /// reusing the existing buffer. The in-place counterpart of
    /// [`TimeSeries::new`] for scratch series in hot loops.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] if the rate is not finite and
    /// positive; the series is left unchanged.
    pub fn assign(
        &mut self,
        t0: f64,
        sample_rate_hz: f64,
        values: impl IntoIterator<Item = f64>,
    ) -> Result<(), InvalidRateError> {
        if !sample_rate_hz.is_finite() || sample_rate_hz <= 0.0 {
            return Err(InvalidRateError);
        }
        self.t0 = t0;
        self.sample_rate_hz = sample_rate_hz;
        self.values.clear();
        self.values.extend(values);
        Ok(())
    }

    /// Start time in seconds.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The sampling interval in seconds.
    pub fn dt(&self) -> f64 {
        1.0 / self.sample_rate_hz
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Duration covered by the samples (`len / rate`) in seconds.
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 * self.dt()
    }

    /// The timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + i as f64 * self.dt()
    }

    /// The sample index covering time `t`, or `None` outside the series.
    pub fn index_at(&self, t: f64) -> Option<usize> {
        if t < self.t0 {
            return None;
        }
        let i = ((t - self.t0) * self.sample_rate_hz).floor() as usize;
        (i < self.values.len()).then_some(i)
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.time_at(i), v))
    }

    /// The sub-series covering `[start, end)` seconds (clamped to the
    /// series extent). The result keeps the same rate and starts at the
    /// first retained sample's timestamp.
    pub fn slice_time(&self, start: f64, end: f64) -> TimeSeries {
        let mut out = TimeSeries::default();
        self.slice_time_into(start, end, &mut out);
        out
    }

    /// [`TimeSeries::slice_time`] into a caller-owned series, reusing
    /// its buffer. `out`'s previous contents (including its rate and
    /// start time) are discarded, so interval-slicing loops can run
    /// allocation-free after the first pass.
    ///
    /// Out-of-range bounds are handled explicitly, never through the
    /// silent saturation of a float-to-`usize` cast:
    ///
    /// * a window starting before `t0` clamps to the first sample (the
    ///   documented "clamped to the series extent" contract);
    /// * a window lying entirely before `t0` (or with `end <= start`)
    ///   yields an empty slice;
    /// * a NaN bound describes no interval at all and yields an empty
    ///   slice — previously `NaN.max(0.0)` quietly collapsed a NaN
    ///   `start` to sample 0, returning samples from before (any
    ///   meaningful reading of) the requested window.
    pub fn slice_time_into(&self, start: f64, end: f64, out: &mut TimeSeries) {
        out.sample_rate_hz = self.sample_rate_hz;
        out.values.clear();
        if start.is_nan() || end.is_nan() {
            out.t0 = self.t0;
            return;
        }
        let lo_f = ((start - self.t0) * self.sample_rate_hz).ceil();
        let hi_f = ((end - self.t0) * self.sample_rate_hz).ceil();
        // Negative indices are clamped *before* the usize cast; the
        // cast itself only ever sees non-negative values.
        let lo = if lo_f > 0.0 { lo_f as usize } else { 0 };
        let hi = if hi_f > 0.0 {
            (hi_f as usize).min(self.values.len())
        } else {
            0
        };
        let lo = lo.min(hi);
        out.t0 = self.time_at(lo);
        out.values.extend_from_slice(&self.values[lo..hi]);
    }

    /// Appends another series sampled at the same rate; its timestamps
    /// are assumed to continue this one.
    ///
    /// # Panics
    ///
    /// Panics if rates differ.
    pub fn append(&mut self, other: &TimeSeries) {
        assert!(
            (self.sample_rate_hz - other.sample_rate_hz).abs() < 1e-9,
            "cannot append series with different rates"
        );
        self.values.extend_from_slice(&other.values);
    }

    /// Maps values through `f`, keeping timing.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> TimeSeries {
        TimeSeries {
            t0: self.t0,
            sample_rate_hz: self.sample_rate_hz,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Mean of the values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Population variance of the values, `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some(self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / self.values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(1.0, 10.0, (0..20).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn rejects_bad_rate() {
        assert!(TimeSeries::new(0.0, 0.0, vec![]).is_err());
        assert!(TimeSeries::new(0.0, -1.0, vec![]).is_err());
        assert!(TimeSeries::new(0.0, f64::NAN, vec![]).is_err());
    }

    #[test]
    fn timing_accessors() {
        let s = series();
        assert_eq!(s.t0(), 1.0);
        assert!((s.dt() - 0.1).abs() < 1e-12);
        assert!((s.time_at(5) - 1.5).abs() < 1e-12);
        assert!((s.duration() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn index_at_time() {
        let s = series();
        assert_eq!(s.index_at(0.5), None); // before start
        assert_eq!(s.index_at(1.0), Some(0));
        assert_eq!(s.index_at(1.55), Some(5));
        assert_eq!(s.index_at(2.95), Some(19));
        assert_eq!(s.index_at(3.5), None); // past end
    }

    #[test]
    fn slice_time_clamps() {
        let s = series();
        let sub = s.slice_time(1.5, 2.0);
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.values()[0], 5.0);
        assert!((sub.t0() - 1.5).abs() < 1e-12);
        // Fully outside → empty.
        assert!(s.slice_time(10.0, 12.0).is_empty());
        assert!(s.slice_time(2.0, 1.0).is_empty());
    }

    #[test]
    fn slice_before_window_start_never_leaks_samples() {
        // Series starts at t0 = 5.0; requests touching times before it
        // must clamp (or come back empty), never silently alias the
        // negative index onto sample 0's data as an in-window reading.
        let s = TimeSeries::new(5.0, 2.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // Entirely before the window: empty, not "the first samples".
        let pre = s.slice_time(0.0, 4.0);
        assert!(pre.is_empty());
        // Straddling t0: clamps to the first sample, explicit contract.
        let straddle = s.slice_time(0.0, 6.0);
        assert_eq!(straddle.t0(), 5.0);
        assert_eq!(straddle.values(), &[1.0, 2.0]);
        // Infinite bounds behave as unbounded ends of the extent.
        assert_eq!(
            s.slice_time(f64::NEG_INFINITY, f64::INFINITY).values(),
            s.values()
        );
    }

    #[test]
    fn slice_with_nan_bounds_is_empty() {
        let s = TimeSeries::new(0.0, 2.0, vec![1.0, 2.0, 3.0]).unwrap();
        for (a, b) in [(f64::NAN, 1.0), (0.0, f64::NAN), (f64::NAN, f64::NAN)] {
            let sub = s.slice_time(a, b);
            assert!(sub.is_empty(), "NaN bound ({a}, {b}) must yield empty");
            assert_eq!(sub.sample_rate_hz(), 2.0);
        }
        // Reusing a buffer after a NaN request leaves no stale samples.
        let mut out = s.slice_time(0.0, 10.0);
        s.slice_time_into(f64::NAN, 1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn append_continues_series() {
        let mut a = TimeSeries::new(0.0, 10.0, vec![1.0, 2.0]).unwrap();
        let b = TimeSeries::new(0.2, 10.0, vec![3.0]).unwrap();
        a.append(&b);
        assert_eq!(a.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "different rates")]
    fn append_rate_mismatch_panics() {
        let mut a = TimeSeries::new(0.0, 10.0, vec![1.0]).unwrap();
        let b = TimeSeries::new(0.0, 20.0, vec![1.0]).unwrap();
        a.append(&b);
    }

    #[test]
    fn map_and_moments() {
        let s = TimeSeries::new(0.0, 1.0, vec![1.0, 2.0, 3.0]).unwrap();
        let doubled = s.map(|v| v * 2.0);
        assert_eq!(doubled.values(), &[2.0, 4.0, 6.0]);
        assert_eq!(s.mean(), Some(2.0));
        assert!((s.variance().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(TimeSeries::default().mean(), None);
    }

    #[test]
    fn iter_yields_time_value_pairs() {
        let s = TimeSeries::new(0.0, 2.0, vec![5.0, 6.0]).unwrap();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(0.0, 5.0), (0.5, 6.0)]);
    }
}
