//! Synthetic gyroscope (z-axis turn rate) signals.
//!
//! The paper's future-work section suggests "highly accurate direction
//! estimation by using gyroscope and advanced filtering techniques such
//! as the Kalman filter". This module provides the gyroscope substrate
//! for that extension: the z-axis angular rate a phone would measure
//! while its carrier walks and turns, with the classic MEMS error model
//! (constant bias + white noise), whose integration drifts over time —
//! exactly the error structure heading fusion must fight.

use crate::noise::NoiseModel;
use crate::series::TimeSeries;
use moloc_stats::circular::signed_diff_deg;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Synthesizes z-axis turn-rate readings from a true heading series.
///
/// # Examples
///
/// ```
/// use moloc_sensors::gyro::GyroSynthesizer;
/// use moloc_sensors::series::TimeSeries;
/// use rand::SeedableRng;
///
/// // Constant heading → zero rate (plus bias/noise).
/// let truth = TimeSeries::new(0.0, 10.0, vec![90.0; 20]).unwrap();
/// let gyro = GyroSynthesizer::new(0.0, 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let rates = gyro.synthesize(&truth, &mut rng);
/// assert!(rates.values().iter().all(|&r| r.abs() < 1e-9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GyroSynthesizer {
    /// Constant rate bias in °/s (MEMS gyros drift by 0.1–2 °/s).
    pub bias_deg_s: f64,
    /// White noise standard deviation in °/s.
    pub noise_sigma_deg_s: f64,
}

impl GyroSynthesizer {
    /// Creates a synthesizer.
    ///
    /// # Panics
    ///
    /// Panics if the noise sigma is negative.
    pub fn new(bias_deg_s: f64, noise_sigma_deg_s: f64) -> Self {
        assert!(noise_sigma_deg_s >= 0.0, "noise sigma must be non-negative");
        Self {
            bias_deg_s,
            noise_sigma_deg_s,
        }
    }

    /// A perfect gyro.
    pub fn ideal() -> Self {
        Self {
            bias_deg_s: 0.0,
            noise_sigma_deg_s: 0.0,
        }
    }

    /// Turn-rate readings (°/s) derived from consecutive true headings.
    /// The first sample's rate is 0 (no previous heading).
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        true_headings: &TimeSeries,
        rng: &mut R,
    ) -> TimeSeries {
        let dt = true_headings.dt();
        let noise = NoiseModel::new(self.bias_deg_s, self.noise_sigma_deg_s);
        let v = true_headings.values();
        let rates: Vec<f64> = (0..v.len())
            .map(|i| {
                let true_rate = if i == 0 {
                    0.0
                } else {
                    signed_diff_deg(v[i - 1], v[i]) / dt
                };
                noise.apply_value(true_rate, rng)
            })
            .collect();
        TimeSeries::new(true_headings.t0(), true_headings.sample_rate_hz(), rates)
            .expect("rate unchanged")
    }
}

/// Integrates turn-rate readings into a relative heading series
/// starting from `initial_heading_deg`. Pure dead reckoning: bias
/// accumulates linearly with time.
pub fn integrate_rates(rates: &TimeSeries, initial_heading_deg: f64) -> TimeSeries {
    let dt = rates.dt();
    let mut heading = initial_heading_deg;
    let values: Vec<f64> = rates
        .values()
        .iter()
        .map(|&rate| {
            heading += rate * dt;
            moloc_stats::circular::normalize_deg(heading)
        })
        .collect();
    TimeSeries::new(rates.t0(), rates.sample_rate_hz(), values).expect("rate unchanged")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_stats::circular::abs_diff_deg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn turning_truth() -> TimeSeries {
        // Heading ramps 0 → 90° over 3 s at 10 Hz (30 °/s), then holds.
        let mut v = Vec::new();
        for i in 0..30 {
            v.push(i as f64 * 3.0);
        }
        v.extend(std::iter::repeat_n(90.0, 20));
        TimeSeries::new(0.0, 10.0, v).unwrap()
    }

    #[test]
    fn rates_reflect_turns() {
        let mut rng = StdRng::seed_from_u64(0);
        let rates = GyroSynthesizer::ideal().synthesize(&turning_truth(), &mut rng);
        // During the ramp: 30 °/s; during the hold: 0.
        assert!((rates.values()[10] - 30.0).abs() < 1e-9);
        assert!(rates.values()[40].abs() < 1e-9);
    }

    #[test]
    fn integration_recovers_heading_without_bias() {
        let truth = turning_truth();
        let mut rng = StdRng::seed_from_u64(1);
        let rates = GyroSynthesizer::new(0.0, 0.2).synthesize(&truth, &mut rng);
        let integrated = integrate_rates(&rates, truth.values()[0]);
        let end_err = abs_diff_deg(
            *integrated.values().last().unwrap(),
            *truth.values().last().unwrap(),
        );
        assert!(end_err < 3.0, "end error {end_err}");
    }

    #[test]
    fn bias_makes_integration_drift_linearly() {
        let truth = TimeSeries::new(0.0, 10.0, vec![0.0; 100]).unwrap(); // 10 s still
        let mut rng = StdRng::seed_from_u64(2);
        let rates = GyroSynthesizer::new(1.0, 0.0).synthesize(&truth, &mut rng);
        let integrated = integrate_rates(&rates, 0.0);
        // 1 °/s bias over 10 s → ≈ 10° drift.
        let drift = abs_diff_deg(*integrated.values().last().unwrap(), 0.0);
        assert!((drift - 10.0).abs() < 0.5, "drift {drift}");
    }

    #[test]
    fn rates_handle_wraparound_headings() {
        // 350° → 10° is a +20° turn, not −340°.
        let truth = TimeSeries::new(0.0, 10.0, vec![350.0, 10.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rates = GyroSynthesizer::ideal().synthesize(&truth, &mut rng);
        assert!((rates.values()[1] - 200.0).abs() < 1e-9); // 20° / 0.1 s
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_panics() {
        let _ = GyroSynthesizer::new(0.0, -1.0);
    }
}
