//! Compass–gyroscope heading fusion.
//!
//! The paper's future-work extension: the compass is absolute but noisy
//! and bias-prone; the gyroscope is precise over short horizons but
//! drifts. [`HeadingFusion`] runs a 1-D Kalman filter on the heading
//! angle: the gyro rate drives the prediction, each compass reading is
//! a measurement update, and all arithmetic happens on wrapped angular
//! *errors* so the 0°/360° seam never bites.

use crate::series::TimeSeries;
use moloc_stats::circular::{normalize_deg, signed_diff_deg};
use serde::{Deserialize, Serialize};

/// A Kalman-filter heading fusing gyro predictions with compass
/// updates.
///
/// # Examples
///
/// ```
/// use moloc_sensors::fusion::HeadingFusion;
///
/// let mut f = HeadingFusion::new(90.0, 1.0, 36.0);
/// // Standing still (rate 0), compass reads around 90° with noise.
/// for reading in [95.0, 88.0, 91.0, 86.0, 92.0] {
///     f.predict(0.0, 0.1);
///     f.update(reading);
/// }
/// let h = f.heading_deg();
/// assert!((h - 90.0).abs() < 4.0, "heading {h}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadingFusion {
    heading_deg: f64,
    variance: f64,
    /// Process noise: variance added per second of gyro integration,
    /// (°)²/s.
    process_var_per_s: f64,
    /// Compass measurement variance, (°)².
    measurement_var: f64,
}

impl HeadingFusion {
    /// Creates a filter at an initial heading with the given process
    /// (per second) and measurement variances.
    ///
    /// # Panics
    ///
    /// Panics unless both variances are positive.
    pub fn new(initial_heading_deg: f64, process_var_per_s: f64, measurement_var: f64) -> Self {
        assert!(
            process_var_per_s > 0.0 && measurement_var > 0.0,
            "variances must be positive"
        );
        Self {
            heading_deg: normalize_deg(initial_heading_deg),
            variance: measurement_var,
            process_var_per_s,
            measurement_var,
        }
    }

    /// Gyro prediction step: advance the heading by `rate_deg_s · dt_s`
    /// and grow the uncertainty.
    pub fn predict(&mut self, rate_deg_s: f64, dt_s: f64) {
        debug_assert!(dt_s >= 0.0, "time must move forward");
        self.heading_deg = normalize_deg(self.heading_deg + rate_deg_s * dt_s);
        self.variance += self.process_var_per_s * dt_s;
    }

    /// Compass measurement update on the wrapped innovation.
    pub fn update(&mut self, compass_deg: f64) {
        let innovation = signed_diff_deg(self.heading_deg, compass_deg);
        let gain = self.variance / (self.variance + self.measurement_var);
        self.heading_deg = normalize_deg(self.heading_deg + gain * innovation);
        self.variance *= 1.0 - gain;
    }

    /// The fused heading estimate in `[0, 360)`.
    pub fn heading_deg(&self) -> f64 {
        self.heading_deg
    }

    /// The current estimate variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Fuses whole series: per sample, predict with the gyro rate and
    /// update with the compass reading. Series must share timing.
    ///
    /// # Panics
    ///
    /// Panics if lengths or rates differ.
    pub fn fuse_series(mut self, gyro_rates: &TimeSeries, compass: &TimeSeries) -> TimeSeries {
        assert_eq!(gyro_rates.len(), compass.len(), "series lengths differ");
        assert!(
            (gyro_rates.sample_rate_hz() - compass.sample_rate_hz()).abs() < 1e-9,
            "series rates differ"
        );
        let dt = gyro_rates.dt();
        let fused: Vec<f64> = gyro_rates
            .values()
            .iter()
            .zip(compass.values())
            .map(|(&rate, &reading)| {
                self.predict(rate, dt);
                self.update(reading);
                self.heading_deg
            })
            .collect();
        TimeSeries::new(compass.t0(), compass.sample_rate_hz(), fused).expect("rate unchanged")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compass::CompassSynthesizer;
    use crate::gyro::GyroSynthesizer;
    use moloc_stats::circular::abs_diff_deg;
    use moloc_stats::online::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Heading truth: straight, sharp 90° turn, straight.
    fn truth() -> TimeSeries {
        let mut v = vec![0.0; 30];
        for i in 0..10 {
            v.push(i as f64 * 9.0);
        }
        v.extend(std::iter::repeat_n(90.0, 30));
        TimeSeries::new(0.0, 10.0, v).unwrap()
    }

    #[test]
    fn fusion_beats_raw_compass() {
        let truth = truth();
        let mut rng = StdRng::seed_from_u64(5);
        let compass = CompassSynthesizer::new(0.0, 8.0, 0.0).synthesize(&truth, &mut rng);
        let gyro = GyroSynthesizer::new(0.3, 0.5).synthesize(&truth, &mut rng);
        let fused = HeadingFusion::new(truth.values()[0], 4.0, 64.0).fuse_series(&gyro, &compass);

        let mut raw_err = Welford::new();
        let mut fused_err = Welford::new();
        // Skip the settle-in and the turn itself.
        for i in 45..70 {
            raw_err.push(abs_diff_deg(compass.values()[i], truth.values()[i]));
            fused_err.push(abs_diff_deg(fused.values()[i], truth.values()[i]));
        }
        assert!(
            fused_err.mean() < raw_err.mean(),
            "fused {:.2}° vs raw {:.2}°",
            fused_err.mean(),
            raw_err.mean()
        );
    }

    #[test]
    fn fusion_tracks_through_turns() {
        let truth = truth();
        let mut rng = StdRng::seed_from_u64(7);
        let compass = CompassSynthesizer::new(0.0, 6.0, 0.0).synthesize(&truth, &mut rng);
        let gyro = GyroSynthesizer::new(0.0, 0.3).synthesize(&truth, &mut rng);
        let fused = HeadingFusion::new(0.0, 4.0, 36.0).fuse_series(&gyro, &compass);
        let end = *fused.values().last().unwrap();
        assert!(abs_diff_deg(end, 90.0) < 5.0, "end heading {end}");
    }

    #[test]
    fn update_shrinks_variance_predict_grows_it() {
        let mut f = HeadingFusion::new(0.0, 2.0, 25.0);
        let v0 = f.variance();
        f.predict(0.0, 1.0);
        assert!(f.variance() > v0);
        let v1 = f.variance();
        f.update(1.0);
        assert!(f.variance() < v1);
    }

    #[test]
    fn wraparound_innovations_are_short_way() {
        let mut f = HeadingFusion::new(359.0, 1.0, 4.0);
        f.predict(0.0, 0.1);
        f.update(2.0); // 3° away across the seam
        let h = f.heading_deg();
        assert!(
            abs_diff_deg(h, 0.5) < 3.0,
            "heading {h} should move across the seam"
        );
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_series_panic() {
        let a = TimeSeries::new(0.0, 10.0, vec![0.0; 3]).unwrap();
        let b = TimeSeries::new(0.0, 10.0, vec![0.0; 4]).unwrap();
        let _ = HeadingFusion::new(0.0, 1.0, 1.0).fuse_series(&a, &b);
    }
}
