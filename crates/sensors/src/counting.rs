//! Step counting: Discrete (DSC) vs Continuous (CSC).
//!
//! The paper (Sec. IV-B1) argues that integral step counting misses the
//! *odd time* — the walking before the first detected step and after the
//! last one — which can cost one or two steps per 3-second localization
//! interval. Its Continuous Step Counting divides the odd time by the
//! gait period to recover *decimal steps*:
//!
//! ```text
//! period   = (t_last − t_first) / (n − 1)
//! odd time = interval − (t_last − t_first)
//! steps    = (n − 1) + odd_time / period
//! ```
//!
//! so a user who walked the entire interval is credited with
//! `interval / period` steps regardless of peak alignment.

use crate::series::TimeSeries;
use crate::steps::{StepDetector, StepEvent};
use serde::{Deserialize, Serialize};

/// Which step-counting estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CountingMethod {
    /// Integral step count (baseline).
    Discrete,
    /// The paper's decimal-step estimator.
    #[default]
    Continuous,
}

/// Counts steps in a segment with the chosen method.
///
/// Both methods run the same [`StepDetector`]; they differ only in how
/// detected peaks become a (possibly fractional) step count.
pub fn count_steps(series: &TimeSeries, detector: &StepDetector, method: CountingMethod) -> f64 {
    let steps = detector.detect(series);
    match method {
        CountingMethod::Discrete => dsc(&steps),
        CountingMethod::Continuous => csc(&steps, series.duration()),
    }
}

/// Discrete Step Counting: the number of detected peaks.
pub fn dsc(steps: &[StepEvent]) -> f64 {
    steps.len() as f64
}

/// Continuous Step Counting over an interval of `interval_s` seconds.
///
/// Falls back to the discrete count when fewer than two steps were
/// detected (no period estimate is possible).
pub fn csc(steps: &[StepEvent], interval_s: f64) -> f64 {
    if steps.len() < 2 {
        return steps.len() as f64;
    }
    let n = steps.len() as f64;
    let span = steps.last().expect("non-empty").time - steps.first().expect("non-empty").time;
    if span <= 0.0 {
        return steps.len() as f64;
    }
    let period = span / (n - 1.0);
    let odd_time = (interval_s - span).max(0.0);
    (n - 1.0) + odd_time / period
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::GaitSynthesizer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_at(t: f64) -> StepEvent {
        StepEvent {
            time: t,
            magnitude: 12.0,
        }
    }

    #[test]
    fn dsc_counts_peaks() {
        let steps = [step_at(0.3), step_at(0.8), step_at(1.3)];
        assert_eq!(dsc(&steps), 3.0);
    }

    #[test]
    fn csc_recovers_odd_time() {
        // Steps every 0.5 s at 0.25, 0.75, …, within a 3 s interval:
        // 6 peaks span 2.5 s, leaving 0.5 s of odd time → 5 + 1 = 6 steps
        // of walking time, i.e. interval / period.
        let steps: Vec<StepEvent> = (0..6).map(|i| step_at(0.25 + 0.5 * i as f64)).collect();
        let estimate = csc(&steps, 3.0);
        assert!((estimate - 6.0).abs() < 1e-9);
    }

    #[test]
    fn csc_equals_interval_over_period_when_walking_throughout() {
        for phase in [0.0, 0.1, 0.3] {
            let steps: Vec<StepEvent> = (0..5).map(|i| step_at(phase + 0.6 * i as f64)).collect();
            let estimate = csc(&steps, 3.0);
            assert!((estimate - 5.0).abs() < 1e-9, "phase {phase}: {estimate}");
        }
    }

    #[test]
    fn csc_fallback_with_few_steps() {
        assert_eq!(csc(&[], 3.0), 0.0);
        assert_eq!(csc(&[step_at(1.0)], 3.0), 1.0);
    }

    #[test]
    fn csc_beats_dsc_on_synthetic_walks() {
        // Over many random phases, CSC's mean absolute step error should
        // be clearly smaller than DSC's — the claim of Sec. IV-B1.
        let synth = GaitSynthesizer::default();
        let detector = StepDetector::default();
        let (mut err_dsc, mut err_csc) = (0.0, 0.0);
        let trials = 40;
        for k in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + k);
            let period = 0.5;
            let true_steps = 3.0 / period; // 3 s interval, 6 true steps
            let phase0 = k as f64 * 0.37 % 1.0;
            let (series, _) = synth.synthesize_segment(3.0, period, phase0, 10.0, &mut rng);
            let steps = detector.detect(&series);
            err_dsc += (dsc(&steps) - true_steps).abs();
            err_csc += (csc(&steps, 3.0) - true_steps).abs();
        }
        err_dsc /= trials as f64;
        err_csc /= trials as f64;
        assert!(
            err_csc < err_dsc,
            "CSC error {err_csc} should beat DSC error {err_dsc}"
        );
    }

    #[test]
    fn count_steps_dispatches_methods() {
        let mut rng = StdRng::seed_from_u64(9);
        let series = GaitSynthesizer::default().synthesize_walk(6, 0.5, 10.0, &mut rng);
        let det = StepDetector::default();
        let d = count_steps(&series, &det, CountingMethod::Discrete);
        let c = count_steps(&series, &det, CountingMethod::Continuous);
        assert!(d.fract() == 0.0);
        assert!((c - 6.0).abs() < 1.0);
    }
}
