//! Synthetic gait accelerometer signals.
//!
//! The paper's Fig. 4 shows the magnitude of acceleration during 10
//! steps: a repetitive pattern oscillating around gravity (~9.8 m/s²)
//! with one dominant peak per step, swinging roughly between 6 and
//! 15 m/s². [`GaitSynthesizer`] reproduces that waveform as a
//! fundamental sinusoid at the step frequency plus a second harmonic
//! (the heel-strike bump) and sensor noise, driven by a continuous
//! *walking phase* so multi-interval traces stay coherent.

use crate::noise::NoiseModel;
use crate::series::TimeSeries;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard gravity in m/s².
pub const GRAVITY: f64 = 9.81;

/// Synthesizes accelerometer-magnitude signals for walking and idling.
///
/// # Examples
///
/// ```
/// use moloc_sensors::accel::GaitSynthesizer;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = GaitSynthesizer::default().synthesize_walk(10, 0.5, 10.0, &mut rng);
/// assert_eq!(s.len(), 50); // 5 s at 10 Hz
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaitSynthesizer {
    /// Peak amplitude of the fundamental, in m/s² (per-user gait
    /// vigour; the paper's walkers differ in this).
    pub amplitude: f64,
    /// Second-harmonic amplitude as a fraction of the fundamental.
    pub harmonic_ratio: f64,
    /// Sensor noise applied to the synthesized magnitude.
    pub noise: NoiseModel,
}

impl Default for GaitSynthesizer {
    fn default() -> Self {
        Self {
            amplitude: 2.8,
            harmonic_ratio: 0.3,
            noise: NoiseModel::new(0.0, 0.25),
        }
    }
}

impl GaitSynthesizer {
    /// The clean (noise-free) magnitude at walking phase `phase`
    /// (one unit of phase = one step).
    ///
    /// The peak of each step occurs at phase `k + 0.25`.
    pub fn magnitude_at_phase(&self, phase: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * phase;
        GRAVITY + self.amplitude * w.sin() + self.amplitude * self.harmonic_ratio * (2.0 * w).sin()
    }

    /// Synthesizes a walking segment of `duration_s` seconds with step
    /// period `step_period_s`, starting at walking phase `phase0`.
    /// Returns the series and the phase at the end of the segment.
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or period/rate are not
    /// positive.
    pub fn synthesize_segment<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        step_period_s: f64,
        phase0: f64,
        sample_rate_hz: f64,
        rng: &mut R,
    ) -> (TimeSeries, f64) {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        assert!(step_period_s > 0.0, "step period must be positive");
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let n = (duration_s * sample_rate_hz).round() as usize;
        let dt = 1.0 / sample_rate_hz;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let phase = phase0 + i as f64 * dt / step_period_s;
                self.noise.apply_value(self.magnitude_at_phase(phase), rng)
            })
            .collect();
        let series = TimeSeries::new(0.0, sample_rate_hz, values).expect("positive rate");
        (series, phase0 + duration_s / step_period_s)
    }

    /// Synthesizes exactly `n_steps` steps with the given period — the
    /// protocol behind the paper's Fig. 4 (10 steps).
    pub fn synthesize_walk<R: Rng + ?Sized>(
        &self,
        n_steps: usize,
        step_period_s: f64,
        sample_rate_hz: f64,
        rng: &mut R,
    ) -> TimeSeries {
        self.synthesize_segment(
            n_steps as f64 * step_period_s,
            step_period_s,
            0.0,
            sample_rate_hz,
            rng,
        )
        .0
    }

    /// Synthesizes a stationary segment: gravity plus noise.
    pub fn synthesize_idle<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        sample_rate_hz: f64,
        rng: &mut R,
    ) -> TimeSeries {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let n = (duration_s * sample_rate_hz).round() as usize;
        let values = (0..n)
            .map(|_| self.noise.apply_value(GRAVITY, rng))
            .collect();
        TimeSeries::new(0.0, sample_rate_hz, values).expect("positive rate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_waveform_oscillates_around_gravity() {
        let g = GaitSynthesizer {
            noise: NoiseModel::clean(),
            ..GaitSynthesizer::default()
        };
        // Average over a full period ≈ gravity.
        let n = 1000;
        let mean: f64 = (0..n)
            .map(|i| g.magnitude_at_phase(i as f64 / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - GRAVITY).abs() < 1e-6);
        // Peak near phase 0.25 is well above gravity.
        assert!(g.magnitude_at_phase(0.25) > GRAVITY + 2.0);
        assert!(g.magnitude_at_phase(0.75) < GRAVITY - 2.0);
    }

    #[test]
    fn fig4_like_signal_spans_expected_range() {
        // Paper Fig. 4: swings roughly within [5, 16] m/s².
        let mut rng = StdRng::seed_from_u64(2);
        let s = GaitSynthesizer::default().synthesize_walk(10, 0.5, 10.0, &mut rng);
        let max = s.values().iter().cloned().fold(f64::MIN, f64::max);
        let min = s.values().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 11.0 && max < 17.0, "max {max}");
        assert!(min < 8.0 && min > 4.0, "min {min}");
    }

    #[test]
    fn segment_phase_is_continuous() {
        let g = GaitSynthesizer::default();
        let mut rng = StdRng::seed_from_u64(3);
        let (_, phase) = g.synthesize_segment(2.0, 0.5, 0.0, 10.0, &mut rng);
        assert!((phase - 4.0).abs() < 1e-12); // 2 s / 0.5 s per step
        let (_, phase2) = g.synthesize_segment(0.75, 0.5, phase, 10.0, &mut rng);
        assert!((phase2 - 5.5).abs() < 1e-12);
    }

    #[test]
    fn idle_signal_hovers_at_gravity() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = GaitSynthesizer::default().synthesize_idle(5.0, 10.0, &mut rng);
        assert_eq!(s.len(), 50);
        let mean = s.mean().unwrap();
        assert!((mean - GRAVITY).abs() < 0.2);
        assert!(s.variance().unwrap() < 0.2);
    }

    #[test]
    fn walk_duration_matches_steps_times_period() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = GaitSynthesizer::default().synthesize_walk(7, 0.6, 20.0, &mut rng);
        assert!((s.duration() - 4.2).abs() < 0.051);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = GaitSynthesizer::default().synthesize_segment(-1.0, 0.5, 0.0, 10.0, &mut rng);
    }
}
