//! Step-length models.
//!
//! The paper derives step size "from individual's height and weight
//! \[25\]" (Constandache et al.). The dominant term in such models is a
//! linear height factor (~0.41–0.42 of height), with a small weight
//! correction; [`StepLengthModel`] implements that family.

use serde::{Deserialize, Serialize};

/// Step length as a function of user height and weight.
///
/// `L = height_factor · height + weight_slope · (weight − 70 kg)`
///
/// # Examples
///
/// ```
/// use moloc_sensors::stride::StepLengthModel;
///
/// let model = StepLengthModel::default();
/// let l = model.step_length_m(1.75, 70.0);
/// assert!(l > 0.65 && l < 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepLengthModel {
    /// Fraction of body height contributing to a step (≈ 0.413).
    pub height_factor: f64,
    /// Meters of step length per kg away from the 70 kg reference
    /// (small, may be negative: heavier gait → slightly shorter steps).
    pub weight_slope: f64,
}

impl Default for StepLengthModel {
    fn default() -> Self {
        Self {
            height_factor: 0.413,
            weight_slope: -0.0005,
        }
    }
}

impl StepLengthModel {
    /// The modeled step length in meters, clamped to a plausible
    /// `[0.3, 1.2]` m so pathological inputs cannot produce nonsense.
    ///
    /// # Panics
    ///
    /// Panics unless height and weight are positive.
    pub fn step_length_m(&self, height_m: f64, weight_kg: f64) -> f64 {
        assert!(height_m > 0.0, "height must be positive");
        assert!(weight_kg > 0.0, "weight must be positive");
        (self.height_factor * height_m + self.weight_slope * (weight_kg - 70.0)).clamp(0.3, 1.2)
    }
}

/// Estimates walked distance: (possibly fractional) steps × step length.
///
/// # Panics
///
/// Panics if `steps` is negative.
pub fn offset_m(steps: f64, step_length_m: f64) -> f64 {
    assert!(steps >= 0.0, "step count must be non-negative");
    steps * step_length_m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_heights_give_normal_steps() {
        // The paper calls 0.7–0.8 m "a normal step size".
        let m = StepLengthModel::default();
        let short = m.step_length_m(1.55, 50.0);
        let tall = m.step_length_m(1.90, 85.0);
        assert!(short > 0.55 && short < 0.72, "short {short}");
        assert!(tall > 0.72 && tall < 0.85, "tall {tall}");
        assert!(tall > short);
    }

    #[test]
    fn weight_correction_is_small() {
        let m = StepLengthModel::default();
        let light = m.step_length_m(1.75, 55.0);
        let heavy = m.step_length_m(1.75, 95.0);
        assert!((light - heavy).abs() < 0.05);
        assert!(light > heavy);
    }

    #[test]
    fn clamping_bounds_extremes() {
        let m = StepLengthModel::default();
        assert_eq!(m.step_length_m(0.3, 70.0), 0.3);
        assert_eq!(m.step_length_m(5.0, 70.0), 1.2);
    }

    #[test]
    fn offset_scales_linearly() {
        assert_eq!(offset_m(6.0, 0.75), 4.5);
        assert_eq!(offset_m(0.0, 0.75), 0.0);
        assert!((offset_m(5.5, 0.8) - 4.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_steps_panics() {
        let _ = offset_m(-1.0, 0.7);
    }

    #[test]
    #[should_panic(expected = "height")]
    fn zero_height_panics() {
        let _ = StepLengthModel::default().step_length_m(0.0, 70.0);
    }
}
