//! Heading-offset estimation and motion-direction extraction.
//!
//! Raw compass readings track phone orientation; MoLoc borrows Zee's
//! placement-independent orientation idea (Sec. IV-B1): estimate the
//! constant *heading offset* between compass readings and true motion
//! direction, then subtract it. [`HeadingOffsetEstimator`] performs the
//! calibration from (reading, reference-direction) pairs — in practice
//! gathered during intervals whose start/end locations are confidently
//! known — and [`motion_direction_deg`] summarizes an interval's
//! corrected readings into the direction measurement `d` of an RLM.

use crate::series::TimeSeries;
use moloc_stats::circular::{circular_mean_deg, normalize_deg, signed_diff_deg};
use serde::{Deserialize, Serialize};

/// Estimates the constant compass-to-motion heading offset.
///
/// # Examples
///
/// ```
/// use moloc_sensors::heading::HeadingOffsetEstimator;
///
/// let mut est = HeadingOffsetEstimator::new();
/// est.observe(120.0, 90.0); // reading 120° while walking at 90°
/// est.observe(118.0, 88.0);
/// let offset = est.offset_deg().unwrap();
/// assert!((offset - 30.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HeadingOffsetEstimator {
    diffs: Vec<f64>,
}

impl HeadingOffsetEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a calibration pair: a compass reading taken while the
    /// true motion direction was `reference_deg`.
    pub fn observe(&mut self, reading_deg: f64, reference_deg: f64) {
        self.diffs
            .push(normalize_deg(signed_diff_deg(reference_deg, reading_deg)));
    }

    /// Number of calibration pairs.
    pub fn count(&self) -> usize {
        self.diffs.len()
    }

    /// The estimated offset (circular mean of reading − reference), or
    /// `None` without observations.
    pub fn offset_deg(&self) -> Option<f64> {
        circular_mean_deg(self.diffs.iter().copied())
    }

    /// A robust offset estimate: compute the circular mean, drop
    /// observations deviating more than `max_dev_deg` from it, and
    /// re-average. Calibration pairs whose reference direction came
    /// from a *wrong* location estimate are wild outliers; trimming
    /// keeps them from rotating the whole calibration.
    ///
    /// Falls back to the untrimmed mean when trimming would discard
    /// everything.
    pub fn offset_deg_trimmed(&self, max_dev_deg: f64) -> Option<f64> {
        self.trimmed_stats(max_dev_deg).map(|s| s.offset_deg)
    }

    /// The trimmed estimate together with its dispersion, so callers
    /// can judge whether the calibration is trustworthy at all: a large
    /// residual spread means the user's location estimates (and hence
    /// the reference bearings) were unreliable, and motion measurements
    /// derived from this offset should not be trusted either.
    pub fn trimmed_stats(&self, max_dev_deg: f64) -> Option<TrimmedOffset> {
        let initial = self.offset_deg()?;
        let kept: Vec<f64> = self
            .diffs
            .iter()
            .copied()
            .filter(|&d| deviation(d, initial) <= max_dev_deg)
            .collect();
        let (offset_deg, pool): (f64, &[f64]) = match circular_mean_deg(kept.iter().copied()) {
            Some(m) => (m, &kept),
            None => (initial, &self.diffs),
        };
        let n = pool.len() as f64;
        let std_deg = (pool
            .iter()
            .map(|&d| deviation(d, offset_deg).powi(2))
            .sum::<f64>()
            / n)
            .sqrt();
        Some(TrimmedOffset {
            offset_deg,
            std_deg,
            kept: pool.len(),
            total: self.diffs.len(),
        })
    }
}

impl HeadingOffsetEstimator {
    /// A mode-seeking robust estimate: find the densest `window_deg`
    /// arc of observed differences and return the circular mean of the
    /// observations inside it, with quality indicators.
    ///
    /// Unlike mean-then-trim, this stays correct when the
    /// contamination is *multimodal* — e.g. reference bearings flipped
    /// by 180° when a location estimate landed on a fingerprint twin
    /// in the mirrored aisle.
    pub fn mode_stats(&self, window_deg: f64) -> Option<TrimmedOffset> {
        if self.diffs.is_empty() {
            return None;
        }
        let half = window_deg / 2.0;
        // Each observation proposes itself as the window center; the
        // densest window wins (ties: smaller center angle, so the
        // result is deterministic).
        let mut best: Option<(usize, f64)> = None;
        for &center in &self.diffs {
            let votes = self
                .diffs
                .iter()
                .filter(|&&d| deviation(d, center) <= half)
                .count();
            let better = match best {
                None => true,
                Some((n, c)) => votes > n || (votes == n && center < c),
            };
            if better {
                best = Some((votes, center));
            }
        }
        let (_, center) = best.expect("non-empty diffs");
        let kept: Vec<f64> = self
            .diffs
            .iter()
            .copied()
            .filter(|&d| deviation(d, center) <= half)
            .collect();
        let offset_deg = circular_mean_deg(kept.iter().copied()).unwrap_or(center);
        let n = kept.len() as f64;
        let std_deg = (kept
            .iter()
            .map(|&d| deviation(d, offset_deg).powi(2))
            .sum::<f64>()
            / n)
            .sqrt();
        Some(TrimmedOffset {
            offset_deg,
            std_deg,
            kept: kept.len(),
            total: self.diffs.len(),
        })
    }
}

/// A robust offset estimate with its quality indicators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrimmedOffset {
    /// The estimated heading offset, degrees.
    pub offset_deg: f64,
    /// Standard deviation of the surviving residuals, degrees.
    pub std_deg: f64,
    /// Observations that survived trimming.
    pub kept: usize,
    /// Observations offered.
    pub total: usize,
}

impl TrimmedOffset {
    /// Whether the calibration looks reliable: enough surviving pairs,
    /// most pairs surviving, and a tight residual spread.
    pub fn is_reliable(&self, max_std_deg: f64, min_kept_fraction: f64) -> bool {
        self.kept >= 3
            && self.std_deg <= max_std_deg
            && (self.kept as f64) >= min_kept_fraction * self.total as f64
    }
}

fn deviation(a: f64, b: f64) -> f64 {
    signed_diff_deg(a, b).abs()
}

/// The motion direction over an interval: the circular mean of compass
/// readings corrected by `offset_deg`. Returns `None` for an empty
/// series or fully cancelling directions.
pub fn motion_direction_deg(compass: &TimeSeries, offset_deg: f64) -> Option<f64> {
    let corrected = compass.values().iter().map(|&r| r - offset_deg);
    circular_mean_deg(corrected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compass::CompassSynthesizer;
    use moloc_stats::circular::abs_diff_deg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimator_recovers_known_offset() {
        let mut rng = StdRng::seed_from_u64(2);
        let compass = CompassSynthesizer::new(47.0, 5.0, 0.0);
        let mut est = HeadingOffsetEstimator::new();
        for k in 0..200 {
            let truth = (k as f64 * 17.0) % 360.0;
            est.observe(compass.read(truth, &mut rng), truth);
        }
        let offset = est.offset_deg().unwrap();
        assert!(abs_diff_deg(offset, 47.0) < 1.5, "offset {offset}");
        assert_eq!(est.count(), 200);
    }

    #[test]
    fn estimator_handles_wraparound_offsets() {
        let mut est = HeadingOffsetEstimator::new();
        est.observe(5.0, 350.0); // offset +15 crossing zero
        est.observe(10.0, 355.0);
        let offset = est.offset_deg().unwrap();
        assert!(abs_diff_deg(offset, 15.0) < 1e-9);
    }

    #[test]
    fn empty_estimator_returns_none() {
        assert_eq!(HeadingOffsetEstimator::new().offset_deg(), None);
    }

    #[test]
    fn motion_direction_corrects_offset() {
        let mut rng = StdRng::seed_from_u64(3);
        let compass = CompassSynthesizer::new(30.0, 3.0, 0.0);
        let truth = TimeSeries::new(0.0, 10.0, vec![200.0; 30]).unwrap();
        let readings = compass.synthesize(&truth, &mut rng);
        let d = motion_direction_deg(&readings, 30.0).unwrap();
        assert!(abs_diff_deg(d, 200.0) < 2.5, "direction {d}");
    }

    #[test]
    fn motion_direction_of_empty_is_none() {
        let empty = TimeSeries::new(0.0, 10.0, vec![]).unwrap();
        assert_eq!(motion_direction_deg(&empty, 0.0), None);
    }

    #[test]
    fn motion_direction_averages_across_wrap() {
        let readings = TimeSeries::new(0.0, 10.0, vec![355.0, 5.0, 0.0, 358.0, 2.0]).unwrap();
        let d = motion_direction_deg(&readings, 0.0).unwrap();
        assert!(abs_diff_deg(d, 0.0) < 1.0, "direction {d}");
    }
}

#[cfg(test)]
mod trimmed_tests {
    use super::*;
    use moloc_stats::circular::abs_diff_deg;

    #[test]
    fn trimming_rejects_wild_calibration_pairs() {
        let mut est = HeadingOffsetEstimator::new();
        // 8 good pairs at offset ~30°, 2 wild ones at ~150°.
        for k in 0..8 {
            est.observe(120.0 + k as f64, 90.0 + k as f64);
        }
        est.observe(240.0, 90.0);
        est.observe(250.0, 90.0);
        let raw = est.offset_deg().unwrap();
        let trimmed = est.offset_deg_trimmed(45.0).unwrap();
        assert!(abs_diff_deg(trimmed, 30.0) < 3.0, "trimmed {trimmed}");
        assert!(abs_diff_deg(trimmed, 30.0) < abs_diff_deg(raw, 30.0));
    }

    #[test]
    fn trimming_everything_falls_back() {
        let mut est = HeadingOffsetEstimator::new();
        est.observe(120.0, 90.0);
        // One observation, deviation zero from itself → kept anyway.
        assert!(est.offset_deg_trimmed(45.0).is_some());
    }
}
