//! Property-based tests for the IMU substrate.

use moloc_sensors::accel::GaitSynthesizer;
use moloc_sensors::compass::CompassSynthesizer;
use moloc_sensors::counting::{csc, dsc};
use moloc_sensors::filter::{exponential, median, moving_average};
use moloc_sensors::gyro::{integrate_rates, GyroSynthesizer};
use moloc_sensors::heading::HeadingOffsetEstimator;
use moloc_sensors::series::TimeSeries;
use moloc_sensors::steps::{StepDetector, StepEvent};
use moloc_sensors::stride::StepLengthModel;
use moloc_stats::circular::abs_diff_deg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn step_detection_count_matches_synthesis(
        n_steps in 4usize..20,
        period in 0.4..0.8f64,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let series = GaitSynthesizer::default().synthesize_walk(n_steps, period, 10.0, &mut rng);
        let detected = StepDetector::default().detect(&series).len();
        prop_assert!(
            (detected as i64 - n_steps as i64).abs() <= 2,
            "synthesized {n_steps}, detected {detected} (period {period})"
        );
    }

    #[test]
    fn csc_never_less_than_span_steps(
        times in prop::collection::vec(0.05..2.95f64, 2..10),
        interval in 3.0..4.0f64,
    ) {
        // Sorted, deduplicated peak times.
        let mut times = times;
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup_by(|a, b| (*a - *b).abs() < 0.05);
        prop_assume!(times.len() >= 2);
        let steps: Vec<StepEvent> = times
            .iter()
            .map(|&t| StepEvent { time: t, magnitude: 12.0 })
            .collect();
        let c = csc(&steps, interval);
        let d = dsc(&steps);
        // CSC adds odd-time steps on top of the (n−1) spanned periods.
        prop_assert!(c >= d - 1.0 - 1e-9, "csc {c} vs dsc {d}");
        prop_assert!(c.is_finite() && c >= 0.0);
    }

    #[test]
    fn csc_is_exact_for_perfectly_periodic_steps(
        n in 3usize..12,
        period in 0.3..0.9f64,
        phase in 0.0..0.29f64,
    ) {
        let interval = n as f64 * period;
        let steps: Vec<StepEvent> = (0..n)
            .map(|i| StepEvent {
                time: phase + i as f64 * period,
                magnitude: 12.0,
            })
            .collect();
        prop_assume!(steps.last().unwrap().time < interval);
        let estimate = csc(&steps, interval);
        prop_assert!(
            (estimate - n as f64).abs() < 1e-6,
            "estimate {estimate} vs true {n}"
        );
    }

    #[test]
    fn compass_readings_always_wrapped(
        heading in -720.0..720.0f64,
        offset in -360.0..360.0f64,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = CompassSynthesizer::new(offset, 10.0, 5.0);
        let r = c.read(heading, &mut rng);
        prop_assert!((0.0..360.0).contains(&r), "reading {r}");
    }

    #[test]
    fn heading_estimator_recovers_offset_from_clean_pairs(
        offset in 0.0..360.0f64,
        refs in prop::collection::vec(0.0..360.0f64, 3..20),
    ) {
        let mut est = HeadingOffsetEstimator::new();
        for &r in &refs {
            est.observe(r + offset, r);
        }
        let got = est.offset_deg().unwrap();
        prop_assert!(abs_diff_deg(got, offset) < 1e-6, "offset {offset} got {got}");
        let trimmed = est.offset_deg_trimmed(45.0).unwrap();
        prop_assert!(abs_diff_deg(trimmed, offset) < 1e-6);
    }

    #[test]
    fn gyro_integration_inverts_synthesis_without_noise(
        headings in prop::collection::vec(0.0..360.0f64, 2..40),
    ) {
        // Smooth the headings into small increments so rates stay sane.
        let mut smooth = vec![headings[0]];
        for h in &headings[1..] {
            let prev = *smooth.last().unwrap();
            let step = moloc_stats::circular::signed_diff_deg(prev, *h).clamp(-20.0, 20.0);
            smooth.push(moloc_stats::circular::normalize_deg(prev + step));
        }
        let truth = TimeSeries::new(0.0, 10.0, smooth.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let rates = GyroSynthesizer::ideal().synthesize(&truth, &mut rng);
        let integrated = integrate_rates(&rates, smooth[0]);
        for (i, &t) in smooth.iter().enumerate() {
            prop_assert!(
                abs_diff_deg(integrated.values()[i], t) < 1e-6,
                "sample {i}: {} vs {t}",
                integrated.values()[i]
            );
        }
    }

    #[test]
    fn filters_preserve_length_and_bounds(
        values in prop::collection::vec(-50.0..50.0f64, 1..60),
        window in 1usize..9,
    ) {
        let s = TimeSeries::new(0.0, 10.0, values.clone()).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for out in [
            moving_average(&s, window),
            median(&s, window),
            exponential(&s, 0.5),
        ] {
            prop_assert_eq!(out.len(), s.len());
            for &v in out.values() {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "filter escaped bounds");
            }
        }
    }

    #[test]
    fn step_length_model_is_monotone_in_height(
        h1 in 1.2..2.1f64,
        h2 in 1.2..2.1f64,
        w in 40.0..110.0f64,
    ) {
        let m = StepLengthModel::default();
        let (short, tall) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        prop_assert!(m.step_length_m(short, w) <= m.step_length_m(tall, w) + 1e-12);
    }

    #[test]
    fn slice_time_is_within_parent(
        values in prop::collection::vec(-5.0..5.0f64, 1..50),
        a in 0.0..5.0f64,
        b in 0.0..5.0f64,
    ) {
        let s = TimeSeries::new(0.0, 10.0, values).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let sub = s.slice_time(lo, hi);
        prop_assert!(sub.len() <= s.len());
        if !sub.is_empty() {
            prop_assert!(sub.t0() >= lo - 1e-9);
            prop_assert!(sub.t0() + sub.duration() <= hi + s.dt() + 1e-9);
        }
    }
}
