//! Property-based tests for the RF substrate.

use moloc_geometry::polygon::Aabb;
use moloc_geometry::{FloorPlan, Vec2};
use moloc_radio::ap::AccessPoint;
use moloc_radio::pathloss::{FreeSpace24GHz, ItuIndoor, LogDistance, PathLossModel};
use moloc_radio::sampler::RadioEnvironment;
use moloc_radio::Dbm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env(temporal_sigma: f64) -> RadioEnvironment {
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(50.0, 30.0)).unwrap());
    RadioEnvironment::builder(plan)
        .seed(9)
        .ap(AccessPoint::new(0, Vec2::new(10.0, 15.0), -18.0))
        .ap(AccessPoint::new(1, Vec2::new(40.0, 15.0), -18.0))
        .shadowing_sigma_db(2.0, 3.0)
        .temporal_sigma_db(temporal_sigma)
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn path_loss_models_are_monotone_and_nonnegative_beyond_1m(
        d1 in 1.0..100.0f64,
        d2 in 1.0..100.0f64,
        exponent in 1.5..5.0f64,
    ) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let models: Vec<Box<dyn PathLossModel>> = vec![
            Box::new(LogDistance::new(exponent).unwrap()),
            Box::new(FreeSpace24GHz),
            Box::new(ItuIndoor::default()),
        ];
        for m in &models {
            prop_assert!(m.path_loss_db(near) <= m.path_loss_db(far) + 1e-9);
            prop_assert!(m.path_loss_db(near) >= -1e-9);
        }
    }

    #[test]
    fn mean_rss_is_deterministic_and_floor_clamped(
        x in 0.0..50.0f64,
        y in 0.0..30.0f64,
    ) {
        let env = env(3.0);
        let pos = Vec2::new(x, y);
        let a = env.mean_scan(pos);
        let b = env.mean_scan(pos);
        prop_assert_eq!(&a, &b);
        for v in a {
            prop_assert!(v >= env.noise_floor());
        }
    }

    #[test]
    fn closer_position_on_the_axis_sees_stronger_mean_signal(
        d1 in 1.0..20.0f64,
        d2 in 1.0..20.0f64,
    ) {
        // Along the AP0 axis with zero shadowing the ordering is pure
        // path loss.
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(50.0, 30.0)).unwrap());
        let env = RadioEnvironment::builder(plan)
            .ap(AccessPoint::new(0, Vec2::new(10.0, 15.0), -18.0))
            .temporal_sigma_db(0.0)
            .build()
            .unwrap();
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let ap = &env.aps()[0];
        let rss_near = env.mean_rss(ap, Vec2::new(10.0 + near, 15.0));
        let rss_far = env.mean_rss(ap, Vec2::new(10.0 + far, 15.0));
        prop_assert!(rss_near >= rss_far);
    }

    #[test]
    fn zero_temporal_noise_makes_scans_equal_means(
        x in 0.0..50.0f64,
        y in 0.0..30.0f64,
        seed in 0u64..50,
    ) {
        let env = env(0.0);
        let pos = Vec2::new(x, y);
        let mut rng = StdRng::seed_from_u64(seed);
        let scan = env.scan(pos, &mut rng);
        let mean = env.mean_scan(pos);
        for (s, m) in scan.iter().zip(&mean) {
            prop_assert!((s.value() - m.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn scan_noise_is_zero_mean_around_the_static_channel(
        x in 5.0..45.0f64,
        y in 5.0..25.0f64,
    ) {
        let env = env(4.0);
        let pos = Vec2::new(x, y);
        let mean = env.mean_rss(&env.aps()[0], pos).value();
        prop_assume!(mean > -85.0); // keep away from floor clamping bias
        let mut rng = StdRng::seed_from_u64(7);
        let avg: f64 = (0..400)
            .map(|_| env.scan(pos, &mut rng)[0].value())
            .sum::<f64>()
            / 400.0;
        prop_assert!((avg - mean).abs() < 1.0, "avg {avg} vs mean {mean}");
    }

    #[test]
    fn dbm_ordering_matches_values(a in -120.0..0.0f64, b in -120.0..0.0f64) {
        let (da, db) = (Dbm::new(a), Dbm::new(b));
        prop_assert_eq!(da < db, a < b);
        prop_assert!((da - db - (a - b)).abs() < 1e-12);
    }
}
