//! Synthetic site surveys.
//!
//! The paper collects 60 RSS samples at each of the 28 reference
//! locations and splits them 40/10/10 into fingerprint-database,
//! motion-database and test sets (Sec. VI-A). [`SiteSurvey`] reproduces
//! that protocol against a [`RadioEnvironment`].

use crate::sampler::{RadioEnvironment, RssScan};
use moloc_geometry::{LocationId, ReferenceGrid};
use rand::Rng;

/// The three-way split of survey samples at one location.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationSamples {
    /// The reference location.
    pub location: LocationId,
    /// Samples for building the fingerprint database (paper: 40).
    pub fingerprint: Vec<RssScan>,
    /// Samples for location estimates while building the motion
    /// database (paper: 10).
    pub motion: Vec<RssScan>,
    /// Held-out samples for localization tests (paper: 10).
    pub test: Vec<RssScan>,
}

/// A complete site survey over a reference grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSurvey {
    samples: Vec<LocationSamples>,
    ap_count: usize,
}

/// The per-location sample counts of a survey split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveySplit {
    /// Fingerprint-database samples per location.
    pub fingerprint: usize,
    /// Motion-database samples per location.
    pub motion: usize,
    /// Test samples per location.
    pub test: usize,
}

impl SurveySplit {
    /// The paper's 40/10/10 split.
    pub fn paper() -> Self {
        Self {
            fingerprint: 40,
            motion: 10,
            test: 10,
        }
    }

    /// Total samples per location.
    pub fn total(&self) -> usize {
        self.fingerprint + self.motion + self.test
    }
}

impl SiteSurvey {
    /// Conducts a survey: draws `split.total()` noisy scans at every
    /// reference location of `grid` and splits them.
    ///
    /// # Panics
    ///
    /// Panics if the split has zero fingerprint samples.
    pub fn conduct<R: Rng + ?Sized>(
        env: &RadioEnvironment,
        grid: &ReferenceGrid,
        split: SurveySplit,
        rng: &mut R,
    ) -> Self {
        assert!(split.fingerprint > 0, "survey needs fingerprint samples");
        let samples = grid
            .ids()
            .map(|id| {
                let pos = grid.position(id);
                let mut all: Vec<RssScan> =
                    (0..split.total()).map(|_| env.scan(pos, rng)).collect();
                let test = all.split_off(split.fingerprint + split.motion);
                let motion = all.split_off(split.fingerprint);
                LocationSamples {
                    location: id,
                    fingerprint: all,
                    motion,
                    test,
                }
            })
            .collect();
        Self {
            samples,
            ap_count: env.aps().len(),
        }
    }

    /// Per-location sample sets, ordered by location id.
    pub fn locations(&self) -> &[LocationSamples] {
        &self.samples
    }

    /// The samples for one location.
    pub fn location(&self, id: LocationId) -> Option<&LocationSamples> {
        self.samples.iter().find(|s| s.location == id)
    }

    /// Number of APs per scan.
    pub fn ap_count(&self) -> usize {
        self.ap_count
    }

    /// Iterates `(location, scan)` over the fingerprint-set samples.
    pub fn fingerprint_set(&self) -> impl Iterator<Item = (LocationId, &RssScan)> {
        self.samples
            .iter()
            .flat_map(|s| s.fingerprint.iter().map(move |scan| (s.location, scan)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::AccessPoint;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, Vec2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (RadioEnvironment, ReferenceGrid) {
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(20.0, 10.0)).unwrap());
        let env = RadioEnvironment::builder(plan)
            .ap(AccessPoint::new(0, Vec2::new(5.0, 5.0), -20.0))
            .ap(AccessPoint::new(1, Vec2::new(15.0, 5.0), -20.0))
            .temporal_sigma_db(2.0)
            .build()
            .unwrap();
        let grid = ReferenceGrid::new(Vec2::new(2.0, 8.0), 3, 2, 4.0, 4.0).unwrap();
        (env, grid)
    }

    #[test]
    fn paper_split_counts() {
        let s = SurveySplit::paper();
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn survey_has_expected_shape() {
        let (env, grid) = world();
        let mut rng = StdRng::seed_from_u64(3);
        let survey = SiteSurvey::conduct(&env, &grid, SurveySplit::paper(), &mut rng);
        assert_eq!(survey.locations().len(), 6);
        assert_eq!(survey.ap_count(), 2);
        for loc in survey.locations() {
            assert_eq!(loc.fingerprint.len(), 40);
            assert_eq!(loc.motion.len(), 10);
            assert_eq!(loc.test.len(), 10);
            for scan in loc.fingerprint.iter().chain(&loc.motion).chain(&loc.test) {
                assert_eq!(scan.len(), 2);
            }
        }
    }

    #[test]
    fn fingerprint_set_iterates_all_training_scans() {
        let (env, grid) = world();
        let mut rng = StdRng::seed_from_u64(3);
        let survey = SiteSurvey::conduct(&env, &grid, SurveySplit::paper(), &mut rng);
        assert_eq!(survey.fingerprint_set().count(), 6 * 40);
    }

    #[test]
    fn location_lookup() {
        let (env, grid) = world();
        let mut rng = StdRng::seed_from_u64(3);
        let survey = SiteSurvey::conduct(&env, &grid, SurveySplit::paper(), &mut rng);
        assert!(survey.location(LocationId::new(4)).is_some());
        assert!(survey.location(LocationId::new(99)).is_none());
    }

    #[test]
    fn survey_is_reproducible() {
        let (env, grid) = world();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            SiteSurvey::conduct(&env, &grid, SurveySplit::paper(), &mut rng)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "fingerprint samples")]
    fn zero_fingerprint_split_panics() {
        let (env, grid) = world();
        let mut rng = StdRng::seed_from_u64(3);
        let split = SurveySplit {
            fingerprint: 0,
            motion: 1,
            test: 1,
        };
        let _ = SiteSurvey::conduct(&env, &grid, split, &mut rng);
    }
}
