//! The [`Dbm`] newtype for received signal strengths.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Sub};

/// A signal strength in dBm.
///
/// A thin newtype so signal strengths do not get mixed up with other
/// `f64` quantities (distances, probabilities) flowing through the
/// pipeline.
///
/// # Examples
///
/// ```
/// use moloc_radio::dbm::Dbm;
///
/// let rx = Dbm::new(-20.0) - 35.5;
/// assert_eq!(rx.value(), -55.5);
/// assert!(rx > Dbm::new(-60.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

impl Dbm {
    /// Creates a signal strength.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "dBm value must not be NaN");
        Self(value)
    }

    /// The raw dBm value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Clamps to be no weaker than `floor` (receiver noise floor).
    pub fn clamp_floor(self, floor: Dbm) -> Dbm {
        if self.0 < floor.0 {
            floor
        } else {
            self
        }
    }
}

impl Add<f64> for Dbm {
    type Output = Dbm;
    fn add(self, gain_db: f64) -> Dbm {
        Dbm::new(self.0 + gain_db)
    }
}

impl Sub<f64> for Dbm {
    type Output = Dbm;
    fn sub(self, loss_db: f64) -> Dbm {
        Dbm::new(self.0 - loss_db)
    }
}

impl Sub for Dbm {
    type Output = f64;
    fn sub(self, other: Dbm) -> f64 {
        self.0 - other.0
    }
}

impl From<Dbm> for f64 {
    fn from(d: Dbm) -> f64 {
        d.0
    }
}

impl std::fmt::Display for Dbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let p = Dbm::new(-30.0);
        assert_eq!((p + 5.0).value(), -25.0);
        assert_eq!((p - 5.0).value(), -35.0);
        assert_eq!(Dbm::new(-30.0) - Dbm::new(-40.0), 10.0);
    }

    #[test]
    fn ordering() {
        assert!(Dbm::new(-40.0) > Dbm::new(-70.0));
    }

    #[test]
    fn clamp_floor_applies_only_below() {
        let floor = Dbm::new(-100.0);
        assert_eq!(Dbm::new(-120.0).clamp_floor(floor), floor);
        assert_eq!(Dbm::new(-80.0).clamp_floor(floor), Dbm::new(-80.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Dbm::new(f64::NAN);
    }

    #[test]
    fn display_format() {
        assert_eq!(Dbm::new(-55.25).to_string(), "-55.2 dBm");
    }
}
