//! Temporally correlated RSS scanning.
//!
//! [`crate::sampler::RadioEnvironment::scan`] draws independent
//! temporal noise per scan — the standard assumption, and what the
//! paper's per-query matching implicitly assumes. Real channels are
//! stickier: consecutive scans a second apart share fading state.
//! [`CorrelatedScanner`] wraps an environment with an AR(1) noise
//! process per AP:
//!
//! ```text
//! ε_t = ρ · ε_{t−1} + √(1 − ρ²) · N(0, σ_T²)
//! ```
//!
//! so the *stationary* noise variance stays σ_T² (results remain
//! comparable with the independent sampler) while consecutive scans
//! correlate with coefficient ρ. Use it for sensitivity studies: does
//! MoLoc's advantage survive when localization-time noise stops being
//! i.i.d.?

use crate::sampler::{RadioEnvironment, RssScan};
use moloc_stats::sampling::normal;
use rand::Rng;

/// An AR(1)-correlated scanning session over a radio environment.
///
/// # Examples
///
/// ```
/// use moloc_geometry::polygon::Aabb;
/// use moloc_geometry::{FloorPlan, Vec2};
/// use moloc_radio::ap::AccessPoint;
/// use moloc_radio::correlated::CorrelatedScanner;
/// use moloc_radio::sampler::RadioEnvironment;
/// use rand::SeedableRng;
///
/// let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(20.0, 10.0)).unwrap());
/// let env = RadioEnvironment::builder(plan)
///     .ap(AccessPoint::new(0, Vec2::new(10.0, 5.0), -20.0))
///     .temporal_sigma_db(3.0)
///     .build()?;
/// let mut scanner = CorrelatedScanner::new(&env, 0.8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = scanner.scan(Vec2::new(5.0, 5.0), &mut rng);
/// let b = scanner.scan(Vec2::new(5.0, 5.0), &mut rng);
/// assert_eq!(a.len(), b.len());
/// # Ok::<(), moloc_radio::sampler::BuildError>(())
/// ```
#[derive(Debug)]
pub struct CorrelatedScanner<'a> {
    env: &'a RadioEnvironment,
    rho: f64,
    state: Vec<f64>,
}

impl<'a> CorrelatedScanner<'a> {
    /// Creates a session with correlation coefficient `rho ∈ [0, 1)`.
    /// `rho = 0` reproduces independent scanning.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1)`.
    pub fn new(env: &'a RadioEnvironment, rho: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        Self {
            env,
            rho,
            state: vec![0.0; env.aps().len()],
        }
    }

    /// The correlation coefficient.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// One scan at `pos`: static channel + the evolving AR(1) noise.
    pub fn scan<R: Rng + ?Sized>(&mut self, pos: moloc_geometry::Vec2, rng: &mut R) -> RssScan {
        let sigma = self.env.temporal_sigma_db();
        let innovation_sigma = sigma * (1.0 - self.rho * self.rho).sqrt();
        self.env
            .aps()
            .iter()
            .zip(&mut self.state)
            .map(|(ap, eps)| {
                *eps = self.rho * *eps + normal(rng, 0.0, innovation_sigma);
                (self.env.mean_rss(ap, pos) + *eps).clamp_floor(self.env.noise_floor())
            })
            .collect()
    }

    /// Resets the noise state (a fresh session).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|e| *e = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::AccessPoint;
    use moloc_geometry::polygon::Aabb;
    use moloc_geometry::{FloorPlan, Vec2};
    use moloc_stats::online::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(sigma: f64) -> RadioEnvironment {
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(20.0, 10.0)).unwrap());
        RadioEnvironment::builder(plan)
            .ap(AccessPoint::new(0, Vec2::new(10.0, 5.0), -20.0))
            .temporal_sigma_db(sigma)
            .build()
            .unwrap()
    }

    fn noise_series(rho: f64, n: usize) -> Vec<f64> {
        let env = env(3.0);
        let pos = Vec2::new(6.0, 5.0);
        let mean = env.mean_rss(&env.aps()[0], pos).value();
        let mut scanner = CorrelatedScanner::new(&env, rho);
        let mut rng = StdRng::seed_from_u64(5);
        (0..n)
            .map(|_| scanner.scan(pos, &mut rng)[0].value() - mean)
            .collect()
    }

    #[test]
    fn stationary_variance_matches_configured_sigma() {
        for rho in [0.0, 0.5, 0.9] {
            let noise = noise_series(rho, 60_000);
            // Skip burn-in.
            let acc: Welford = noise[500..].iter().copied().collect();
            assert!(
                (acc.std() - 3.0).abs() < 0.15,
                "rho {rho}: std {}",
                acc.std()
            );
            assert!(acc.mean().abs() < 0.2, "rho {rho}: mean {}", acc.mean());
        }
    }

    #[test]
    fn lag1_autocorrelation_approximates_rho() {
        for rho in [0.0, 0.6, 0.9] {
            let noise = noise_series(rho, 40_000);
            let n = noise.len();
            let mean = noise.iter().sum::<f64>() / n as f64;
            let var: f64 = noise.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let cov: f64 = noise
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            let r1 = cov / var;
            assert!((r1 - rho).abs() < 0.05, "rho {rho}: measured {r1}");
        }
    }

    #[test]
    fn rho_zero_is_equivalent_to_independent_statistics() {
        let noise = noise_series(0.0, 30_000);
        let n = noise.len();
        let mean = noise.iter().sum::<f64>() / n as f64;
        let var: f64 = noise.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cov: f64 = noise
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((cov / var).abs() < 0.03);
    }

    #[test]
    fn reset_clears_the_state() {
        let env = env(3.0);
        let mut scanner = CorrelatedScanner::new(&env, 0.95);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            scanner.scan(Vec2::new(6.0, 5.0), &mut rng);
        }
        scanner.reset();
        assert!(scanner.state.iter().all(|&e| e == 0.0));
        assert_eq!(scanner.rho(), 0.95);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rho_one_rejected() {
        let env = env(3.0);
        let _ = CorrelatedScanner::new(&env, 1.0);
    }
}
