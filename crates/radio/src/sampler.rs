//! The combined radio environment and RSS sampling.
//!
//! [`RadioEnvironment`] puts the channel together:
//!
//! ```text
//! RSS(ap, pos, t) = tx_power(ap)
//!                 − path_loss(|ap − pos|)
//!                 − wall_attenuation(ap, pos)
//!                 + shadow(ap, pos)          (static)
//!                 + ε_t                      (temporal, N(0, σ_T²))
//! ```
//!
//! clamped at the receiver noise floor. The static terms define the mean
//! fingerprint a site survey captures; the temporal term is what makes a
//! single localization-time scan deviate from it — the raw material of
//! fingerprint ambiguity.

use crate::ap::{AccessPoint, ApId};
use crate::dbm::Dbm;
use crate::pathloss::{LogDistance, PathLossModel};
use crate::shadowing::ShadowingField;
use moloc_geometry::{FloorPlan, Vec2};
use moloc_stats::sampling::normal;
use rand::Rng;
use std::sync::Arc;

/// One scan: the RSS from every AP, indexed by AP order in the
/// environment.
pub type RssScan = Vec<Dbm>;

/// Error from [`RadioEnvironmentBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// No access point was configured.
    NoAccessPoints,
    /// Two access points share an id.
    DuplicateApId(ApId),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoAccessPoints => write!(f, "environment needs at least one access point"),
            BuildError::DuplicateApId(id) => write!(f, "duplicate access point id {id}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A complete simulated radio environment.
///
/// Cheap to clone (the path-loss model is shared behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct RadioEnvironment {
    plan: FloorPlan,
    aps: Vec<AccessPoint>,
    path_loss: Arc<dyn PathLossModel>,
    shadowing: ShadowingField,
    temporal_sigma_db: f64,
    noise_floor: Dbm,
}

impl RadioEnvironment {
    /// Starts building an environment over a floor plan.
    pub fn builder(plan: FloorPlan) -> RadioEnvironmentBuilder {
        RadioEnvironmentBuilder {
            plan,
            aps: Vec::new(),
            path_loss: Arc::new(LogDistance::indoor_office()),
            shadowing: ShadowingField::disabled(),
            temporal_sigma_db: 3.0,
            noise_floor: Dbm::new(-100.0),
            seed: 0,
        }
    }

    /// The access points, in fingerprint-vector order.
    pub fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// The floor plan.
    pub fn plan(&self) -> &FloorPlan {
        &self.plan
    }

    /// The temporal noise standard deviation in dB.
    pub fn temporal_sigma_db(&self) -> f64 {
        self.temporal_sigma_db
    }

    /// The receiver noise floor.
    pub fn noise_floor(&self) -> Dbm {
        self.noise_floor
    }

    /// The *mean* (time-averaged) RSS from one AP at a position: all
    /// static channel terms, no temporal noise, floor-clamped.
    pub fn mean_rss(&self, ap: &AccessPoint, pos: Vec2) -> Dbm {
        let dist = ap.position().dist(pos);
        let pl = self.path_loss.path_loss_db(dist);
        let walls = self.plan.attenuation_db(ap.position(), pos);
        let shadow = self.shadowing.shadow_db(ap.id(), pos);
        (ap.tx_power() - pl - walls + shadow).clamp_floor(self.noise_floor)
    }

    /// The mean scan (all APs) at a position.
    pub fn mean_scan(&self, pos: Vec2) -> RssScan {
        self.aps.iter().map(|ap| self.mean_rss(ap, pos)).collect()
    }

    /// One noisy scan at a position and instant: mean RSS plus
    /// independent temporal noise per AP, floor-clamped.
    pub fn scan<R: Rng + ?Sized>(&self, pos: Vec2, rng: &mut R) -> RssScan {
        self.aps
            .iter()
            .map(|ap| {
                (self.mean_rss(ap, pos) + normal(rng, 0.0, self.temporal_sigma_db))
                    .clamp_floor(self.noise_floor)
            })
            .collect()
    }

    /// An environment restricted to the first `n` APs — the paper's
    /// 4-AP and 5-AP settings are subsets of the 6-AP deployment.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the AP count.
    pub fn with_first_aps(&self, n: usize) -> RadioEnvironment {
        assert!(n > 0 && n <= self.aps.len(), "invalid AP subset size");
        let mut env = self.clone();
        env.aps.truncate(n);
        env
    }
}

/// Builder for [`RadioEnvironment`].
#[derive(Debug)]
pub struct RadioEnvironmentBuilder {
    plan: FloorPlan,
    aps: Vec<AccessPoint>,
    path_loss: Arc<dyn PathLossModel>,
    shadowing: ShadowingField,
    temporal_sigma_db: f64,
    noise_floor: Dbm,
    seed: u64,
}

impl RadioEnvironmentBuilder {
    /// Adds an access point.
    pub fn ap(mut self, ap: AccessPoint) -> Self {
        self.aps.push(ap);
        self
    }

    /// Sets the path-loss model (default: log-distance, γ = 3).
    pub fn path_loss<M: PathLossModel + 'static>(mut self, model: M) -> Self {
        self.path_loss = Arc::new(model);
        self
    }

    /// Enables static shadow fading with the given sigma (dB) and
    /// correlation length (m); the field is keyed off the builder seed.
    pub fn shadowing_sigma_db(mut self, sigma_db: f64, correlation_m: f64) -> Self {
        self.shadowing = ShadowingField::new(self.seed, sigma_db, correlation_m);
        self
    }

    /// Sets the per-sample temporal noise sigma in dB (default 3.0).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn temporal_sigma_db(mut self, sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0, "temporal sigma must be non-negative");
        self.temporal_sigma_db = sigma_db;
        self
    }

    /// Sets the receiver noise floor (default −100 dBm).
    pub fn noise_floor(mut self, floor: Dbm) -> Self {
        self.noise_floor = floor;
        self
    }

    /// Sets the seed for the static shadowing field. Call **before**
    /// [`Self::shadowing_sigma_db`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the environment.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when no AP is configured or ids collide.
    pub fn build(self) -> Result<RadioEnvironment, BuildError> {
        if self.aps.is_empty() {
            return Err(BuildError::NoAccessPoints);
        }
        for (i, ap) in self.aps.iter().enumerate() {
            if self.aps[..i].iter().any(|other| other.id() == ap.id()) {
                return Err(BuildError::DuplicateApId(ap.id()));
            }
        }
        Ok(RadioEnvironment {
            plan: self.plan,
            aps: self.aps,
            path_loss: self.path_loss,
            shadowing: self.shadowing,
            temporal_sigma_db: self.temporal_sigma_db,
            noise_floor: self.noise_floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::floorplan::Wall;
    use moloc_geometry::polygon::Aabb;
    use moloc_stats::online::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn open_plan() -> FloorPlan {
        FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(40.0, 16.0)).unwrap())
    }

    fn simple_env() -> RadioEnvironment {
        RadioEnvironment::builder(open_plan())
            .ap(AccessPoint::new(0, Vec2::new(10.0, 8.0), -20.0))
            .ap(AccessPoint::new(1, Vec2::new(30.0, 8.0), -20.0))
            .temporal_sigma_db(2.0)
            .build()
            .unwrap()
    }

    #[test]
    fn build_requires_aps() {
        assert_eq!(
            RadioEnvironment::builder(open_plan()).build().unwrap_err(),
            BuildError::NoAccessPoints
        );
    }

    #[test]
    fn build_rejects_duplicate_ids() {
        let err = RadioEnvironment::builder(open_plan())
            .ap(AccessPoint::new(0, Vec2::new(1.0, 1.0), -20.0))
            .ap(AccessPoint::new(0, Vec2::new(2.0, 2.0), -20.0))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DuplicateApId(ApId(0)));
    }

    #[test]
    fn mean_rss_decays_with_distance() {
        let env = simple_env();
        let ap = &env.aps()[0];
        let near = env.mean_rss(ap, Vec2::new(11.0, 8.0));
        let far = env.mean_rss(ap, Vec2::new(25.0, 8.0));
        assert!(near > far);
        // At 1 m the log-distance loss is 0, so RSS equals tx power.
        assert!((near.value() - (-20.0)).abs() < 1e-9);
    }

    #[test]
    fn symmetric_positions_have_twin_mean_fingerprints() {
        // Both APs sit on the line y = 8; mirror positions across it see
        // identical mean scans — the geometry of Fig. 1(a).
        let env = simple_env();
        let q = env.mean_scan(Vec2::new(20.0, 4.0));
        let q_twin = env.mean_scan(Vec2::new(20.0, 12.0));
        for (a, b) in q.iter().zip(&q_twin) {
            assert!((a.value() - b.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn walls_attenuate_mean_rss() {
        let mut plan = open_plan();
        plan.add_wall(Wall::partition(
            Vec2::new(15.0, 0.0),
            Vec2::new(15.0, 16.0),
            7.0,
        ));
        let env = RadioEnvironment::builder(plan)
            .ap(AccessPoint::new(0, Vec2::new(10.0, 8.0), -20.0))
            .build()
            .unwrap();
        let ap = &env.aps()[0];
        let blocked = env.mean_rss(ap, Vec2::new(20.0, 8.0));
        // Same distance on the unblocked side.
        let clear = env.mean_rss(ap, Vec2::new(0.0, 8.0));
        assert!((clear - blocked - 7.0).abs() < 1e-9);
    }

    #[test]
    fn scan_noise_statistics() {
        let env = simple_env();
        let pos = Vec2::new(12.0, 9.0);
        let mean = env.mean_rss(&env.aps()[0], pos);
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = Welford::new();
        for _ in 0..20_000 {
            acc.push(env.scan(pos, &mut rng)[0].value());
        }
        assert!((acc.mean() - mean.value()).abs() < 0.1);
        assert!((acc.std() - 2.0).abs() < 0.1);
    }

    #[test]
    fn scan_respects_noise_floor() {
        let env = RadioEnvironment::builder(open_plan())
            .ap(AccessPoint::new(0, Vec2::new(0.0, 0.0), -95.0))
            .temporal_sigma_db(10.0)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let scan = env.scan(Vec2::new(39.0, 15.0), &mut rng);
            assert!(scan[0] >= env.noise_floor());
        }
    }

    #[test]
    fn ap_subset_restricts_scan_length() {
        let env = simple_env();
        let sub = env.with_first_aps(1);
        assert_eq!(sub.aps().len(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sub.scan(Vec2::new(5.0, 5.0), &mut rng).len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid AP subset")]
    fn ap_subset_zero_panics() {
        let _ = simple_env().with_first_aps(0);
    }

    #[test]
    fn deterministic_given_seeded_rng() {
        let env = simple_env();
        let scan_with = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            env.scan(Vec2::new(7.0, 3.0), &mut rng)
        };
        assert_eq!(scan_with(9), scan_with(9));
    }
}
