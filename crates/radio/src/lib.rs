//! RF propagation substrate for the MoLoc reproduction.
//!
//! The paper evaluates on real WiFi in an office hall; this crate is the
//! simulated counterpart that produces Received Signal Strength (RSS)
//! observations with the error structure that makes *fingerprint
//! ambiguity* happen:
//!
//! * [`dbm`] — the [`dbm::Dbm`] newtype for signal strengths.
//! * [`ap`] — access points with positions and transmit power.
//! * [`pathloss`] — deterministic distance-dependent attenuation models
//!   (log-distance, free-space, ITU indoor).
//! * [`shadowing`] — static per-(AP, position) shadow fading, the
//!   location-specific but time-stable part of the channel.
//! * [`sampler`] — the [`sampler::RadioEnvironment`] combining all of the
//!   above with per-sample temporal noise and a detection floor.
//! * [`survey`] — synthetic site surveys: n samples per reference
//!   location, split into fingerprint/motion/test sets like the paper's
//!   40/10/10.
//! * [`correlated`] — AR(1) temporally correlated scanning for
//!   sensitivity studies.
//!
//! # Examples
//!
//! ```
//! use moloc_geometry::{FloorPlan, Vec2};
//! use moloc_geometry::polygon::Aabb;
//! use moloc_radio::ap::AccessPoint;
//! use moloc_radio::pathloss::LogDistance;
//! use moloc_radio::sampler::RadioEnvironment;
//! use rand::SeedableRng;
//!
//! let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(40.0, 16.0)).unwrap());
//! let env = RadioEnvironment::builder(plan)
//!     .ap(AccessPoint::new(0, Vec2::new(10.0, 8.0), -20.0))
//!     .path_loss(LogDistance::indoor_office())
//!     .temporal_sigma_db(3.0)
//!     .seed(7)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let scan = env.scan(Vec2::new(12.0, 8.0), &mut rng);
//! assert_eq!(scan.len(), 1);
//! # Ok::<(), moloc_radio::sampler::BuildError>(())
//! ```

pub mod ap;
pub mod correlated;
pub mod dbm;
pub mod pathloss;
pub mod sampler;
pub mod shadowing;
pub mod survey;

pub use ap::{AccessPoint, ApId};
pub use dbm::Dbm;
pub use sampler::RadioEnvironment;
