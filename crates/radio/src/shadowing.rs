//! Static shadow fading.
//!
//! Shadowing is the location-specific but time-stable component of the
//! channel: the extra loss (or gain) a receiver at a fixed spot sees for
//! a fixed AP, caused by the particular arrangement of furniture and
//! multipath there. Because it is *stable*, it is captured by the site
//! survey and does not by itself cause localization errors — but its
//! magnitude controls how much natural symmetry (and hence how many
//! fingerprint twins) survive in the environment.
//!
//! [`ShadowingField`] derives a deterministic pseudo-random Gaussian
//! offset from `(seed, AP, quantized position)` with bilinear
//! interpolation between grid cells, giving a smooth spatially
//! correlated field without storing anything.

use moloc_geometry::Vec2;
use moloc_stats::sampling::derive_seed;
use serde::{Deserialize, Serialize};

/// A deterministic, spatially correlated shadow-fading field.
///
/// # Examples
///
/// ```
/// use moloc_radio::shadowing::ShadowingField;
/// use moloc_radio::ap::ApId;
/// use moloc_geometry::Vec2;
///
/// let field = ShadowingField::new(42, 2.0, 4.0);
/// let a = field.shadow_db(ApId(0), Vec2::new(3.0, 3.0));
/// let b = field.shadow_db(ApId(0), Vec2::new(3.0, 3.0));
/// assert_eq!(a, b); // time-stable
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingField {
    seed: u64,
    sigma_db: f64,
    correlation_m: f64,
}

impl ShadowingField {
    /// Creates a field with standard deviation `sigma_db` and
    /// correlation length `correlation_m` (the grid pitch of the
    /// underlying lattice).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or `correlation_m` is not
    /// positive.
    pub fn new(seed: u64, sigma_db: f64, correlation_m: f64) -> Self {
        assert!(sigma_db >= 0.0, "shadowing sigma must be non-negative");
        assert!(correlation_m > 0.0, "correlation length must be positive");
        Self {
            seed,
            sigma_db,
            correlation_m,
        }
    }

    /// A field with zero variance (no shadowing).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            sigma_db: 0.0,
            correlation_m: 1.0,
        }
    }

    /// The standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Gaussian lattice value at integer cell `(i, j)` for an AP.
    fn lattice(&self, ap: crate::ap::ApId, i: i64, j: i64) -> f64 {
        // Mix the coordinates and AP into one label, then turn the mixed
        // 64-bit state into a standard normal via two uniform halves
        // (Box–Muller on the hash output).
        let label = (ap.0 as u64)
            .wrapping_mul(0x1000_0000_0000_003F)
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9))
            .wrapping_add((j as u64).wrapping_mul(0x85EB_CA6B_C2B2_AE35));
        let h1 = derive_seed(self.seed, label);
        let h2 = derive_seed(h1, 0xDEAD_BEEF);
        let u1 = ((h1 >> 11) as f64 + 1.0) / (1u64 << 53) as f64; // (0, 1]
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// The shadow fading in dB seen at `pos` for `ap` (zero-mean
    /// Gaussian with the configured sigma, bilinearly interpolated so
    /// nearby positions see similar values).
    pub fn shadow_db(&self, ap: crate::ap::ApId, pos: Vec2) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        let gx = pos.x / self.correlation_m;
        let gy = pos.y / self.correlation_m;
        let (i0, j0) = (gx.floor() as i64, gy.floor() as i64);
        let (fx, fy) = (gx - gx.floor(), gy - gy.floor());
        let v00 = self.lattice(ap, i0, j0);
        let v10 = self.lattice(ap, i0 + 1, j0);
        let v01 = self.lattice(ap, i0, j0 + 1);
        let v11 = self.lattice(ap, i0 + 1, j0 + 1);
        let v0 = v00 * (1.0 - fx) + v10 * fx;
        let v1 = v01 * (1.0 - fx) + v11 * fx;
        // Bilinear mixing shrinks the variance between lattice points;
        // accept that (it mimics measured shadow maps being smoother
        // between survey spots).
        self.sigma_db * (v0 * (1.0 - fy) + v1 * fy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::ApId;
    use moloc_stats::online::Welford;

    #[test]
    fn deterministic_per_position() {
        let f = ShadowingField::new(7, 3.0, 2.0);
        let p = Vec2::new(5.3, 2.7);
        assert_eq!(f.shadow_db(ApId(1), p), f.shadow_db(ApId(1), p));
    }

    #[test]
    fn different_aps_decorrelated() {
        let f = ShadowingField::new(7, 3.0, 2.0);
        let p = Vec2::new(5.3, 2.7);
        assert_ne!(f.shadow_db(ApId(0), p), f.shadow_db(ApId(1), p));
    }

    #[test]
    fn disabled_field_is_zero() {
        let f = ShadowingField::disabled();
        assert_eq!(f.shadow_db(ApId(0), Vec2::new(1.0, 1.0)), 0.0);
        assert_eq!(f.sigma_db(), 0.0);
    }

    #[test]
    fn statistics_roughly_standard() {
        let f = ShadowingField::new(11, 4.0, 1.0);
        let mut acc = Welford::new();
        // Sample at lattice points so bilinear shrinkage does not apply.
        for i in 0..60 {
            for j in 0..60 {
                acc.push(f.shadow_db(ApId(2), Vec2::new(i as f64, j as f64)));
            }
        }
        assert!(acc.mean().abs() < 0.2, "mean {}", acc.mean());
        assert!((acc.std() - 4.0).abs() < 0.4, "std {}", acc.std());
    }

    #[test]
    fn nearby_points_are_correlated() {
        let f = ShadowingField::new(3, 5.0, 4.0);
        let mut near_diff = Welford::new();
        let mut far_diff = Welford::new();
        for i in 0..200 {
            let base = Vec2::new(i as f64 * 0.37, i as f64 * 0.23);
            let near = base + Vec2::new(0.3, 0.0);
            let far = base + Vec2::new(40.0, 31.0);
            near_diff.push((f.shadow_db(ApId(0), base) - f.shadow_db(ApId(0), near)).abs());
            far_diff.push((f.shadow_db(ApId(0), base) - f.shadow_db(ApId(0), far)).abs());
        }
        assert!(
            near_diff.mean() < far_diff.mean() / 2.0,
            "near {} vs far {}",
            near_diff.mean(),
            far_diff.mean()
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = ShadowingField::new(0, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_correlation_panics() {
        let _ = ShadowingField::new(0, 1.0, 0.0);
    }
}
