//! Deterministic path-loss models.
//!
//! Distance-dependent attenuation is the backbone of the simulated
//! channel. The default for the office-hall scenario is the classic
//! log-distance model with an indoor exponent; free-space and ITU indoor
//! variants are provided for sensitivity studies.

use serde::{Deserialize, Serialize};

/// A deterministic path-loss model: attenuation in dB as a function of
/// distance in meters.
///
/// Implementations must be monotone non-decreasing in distance; the test
/// suite enforces this for the provided models.
pub trait PathLossModel: std::fmt::Debug + Send + Sync {
    /// Path loss in dB at `distance_m` meters (clamped internally to a
    /// minimum of `0.1 m` so the model is defined at the transmitter).
    fn path_loss_db(&self, distance_m: f64) -> f64;
}

/// The log-distance path-loss model:
/// `PL(d) = 10·γ·log₁₀(d / d₀)` with reference distance `d₀ = 1 m`.
///
/// # Examples
///
/// ```
/// use moloc_radio::pathloss::{LogDistance, PathLossModel};
///
/// let m = LogDistance::new(3.0).unwrap();
/// assert_eq!(m.path_loss_db(1.0), 0.0);
/// assert!((m.path_loss_db(10.0) - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistance {
    exponent: f64,
}

/// Error constructing a path-loss model with a non-physical exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidExponentError;

impl std::fmt::Display for InvalidExponentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "path-loss exponent must be finite and positive")
    }
}

impl std::error::Error for InvalidExponentError {}

impl LogDistance {
    /// Creates a model with path-loss exponent `γ`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidExponentError`] unless `γ` is finite and
    /// positive.
    pub fn new(exponent: f64) -> Result<Self, InvalidExponentError> {
        if !exponent.is_finite() || exponent <= 0.0 {
            return Err(InvalidExponentError);
        }
        Ok(Self { exponent })
    }

    /// A typical open-office exponent (γ = 3.0): more loss than free
    /// space because of furniture and people.
    pub fn indoor_office() -> Self {
        Self { exponent: 3.0 }
    }

    /// The exponent γ.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl PathLossModel for LogDistance {
    fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        10.0 * self.exponent * d.log10()
    }
}

/// Free-space path loss at 2.4 GHz relative to 1 m:
/// `PL(d) = 20·log₁₀(d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FreeSpace24GHz;

impl PathLossModel for FreeSpace24GHz {
    fn path_loss_db(&self, distance_m: f64) -> f64 {
        20.0 * distance_m.max(0.1).log10()
    }
}

/// A simplified ITU indoor propagation model relative to 1 m:
/// `PL(d) = 10·n·log₁₀(d) + floor_penalty`, with the distance power
/// coefficient `n = 3.0` for offices at 2.4 GHz. Floor penetration is
/// irrelevant in the single-floor hall so the penalty defaults to zero,
/// but it is configurable for multi-floor studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItuIndoor {
    /// Distance power coefficient `n` (office ≈ 3.0 at 2.4 GHz).
    pub power_coefficient: f64,
    /// Floor penetration penalty in dB.
    pub floor_penalty_db: f64,
}

impl Default for ItuIndoor {
    fn default() -> Self {
        Self {
            power_coefficient: 3.0,
            floor_penalty_db: 0.0,
        }
    }
}

impl PathLossModel for ItuIndoor {
    fn path_loss_db(&self, distance_m: f64) -> f64 {
        10.0 * self.power_coefficient * distance_m.max(0.1).log10() + self.floor_penalty_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_monotone(model: &dyn PathLossModel) {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..200 {
            let d = i as f64 * 0.25;
            let pl = model.path_loss_db(d);
            assert!(pl >= prev, "path loss decreased at d = {d}");
            prev = pl;
        }
    }

    #[test]
    fn log_distance_reference_point() {
        let m = LogDistance::indoor_office();
        assert_eq!(m.path_loss_db(1.0), 0.0);
        assert!((m.path_loss_db(100.0) - 60.0).abs() < 1e-9);
        assert_eq!(m.exponent(), 3.0);
    }

    #[test]
    fn log_distance_rejects_bad_exponent() {
        assert!(LogDistance::new(0.0).is_err());
        assert!(LogDistance::new(-2.0).is_err());
        assert!(LogDistance::new(f64::NAN).is_err());
    }

    #[test]
    fn free_space_doubles_slope_of_20() {
        let m = FreeSpace24GHz;
        assert!((m.path_loss_db(10.0) - 20.0).abs() < 1e-9);
        assert!((m.path_loss_db(100.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn itu_includes_floor_penalty() {
        let m = ItuIndoor {
            power_coefficient: 3.0,
            floor_penalty_db: 15.0,
        };
        assert!((m.path_loss_db(10.0) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn all_models_are_monotone() {
        assert_monotone(&LogDistance::indoor_office());
        assert_monotone(&FreeSpace24GHz);
        assert_monotone(&ItuIndoor::default());
    }

    #[test]
    fn near_field_is_clamped() {
        let m = LogDistance::indoor_office();
        assert_eq!(m.path_loss_db(0.0), m.path_loss_db(0.1));
        assert!(m.path_loss_db(0.0).is_finite());
    }
}
