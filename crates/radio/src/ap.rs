//! Access points.

use crate::dbm::Dbm;
use moloc_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// Identifier of an access point (index into fingerprint vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ApId(pub u32);

impl std::fmt::Display for ApId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AP{}", self.0)
    }
}

/// A WiFi access point.
///
/// # Examples
///
/// ```
/// use moloc_radio::ap::AccessPoint;
/// use moloc_geometry::Vec2;
///
/// let ap = AccessPoint::new(0, Vec2::new(4.0, 8.2), -20.0);
/// assert_eq!(ap.id().0, 0);
/// assert_eq!(ap.tx_power().value(), -20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPoint {
    id: ApId,
    position: Vec2,
    /// Effective transmit power referenced at 1 m, in dBm (i.e. the RSS
    /// a receiver would see one meter away in free space).
    tx_power_dbm: f64,
}

impl AccessPoint {
    /// Creates an access point.
    ///
    /// # Panics
    ///
    /// Panics if `tx_power_dbm` is not finite.
    pub fn new(id: u32, position: Vec2, tx_power_dbm: f64) -> Self {
        assert!(tx_power_dbm.is_finite(), "tx power must be finite");
        Self {
            id: ApId(id),
            position,
            tx_power_dbm,
        }
    }

    /// The id.
    pub fn id(&self) -> ApId {
        self.id
    }

    /// The position.
    pub fn position(&self) -> Vec2 {
        self.position
    }

    /// The effective transmit power (RSS at 1 m).
    pub fn tx_power(&self) -> Dbm {
        Dbm::new(self.tx_power_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let ap = AccessPoint::new(3, Vec2::new(1.0, 2.0), -18.5);
        assert_eq!(ap.id(), ApId(3));
        assert_eq!(ap.position(), Vec2::new(1.0, 2.0));
        assert_eq!(ap.tx_power().value(), -18.5);
        assert_eq!(ap.id().to_string(), "AP3");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_power() {
        let _ = AccessPoint::new(0, Vec2::ZERO, f64::INFINITY);
    }
}
