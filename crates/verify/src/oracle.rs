//! Reference oracles: naive, obviously-correct implementations of the
//! math and wire formats the optimised crates reimplement.
//!
//! Every oracle takes primitive inputs — slices, `(id, value)` pairs,
//! plain Gaussian parameters, raw bytes — so `moloc-verify` sits at
//! the bottom of the crate graph (only `moloc-stats` and
//! `moloc-geometry` below it) and every higher crate can be compared
//! against it without a dependency cycle. The implementations favour
//! clarity over speed: full sorts instead of bounded selection, the
//! exact `erf`-based CDF instead of the tabulated one, per-call
//! allocation instead of scratch reuse.

use moloc_geometry::LocationId;
use moloc_stats::circular::{normalize_deg, signed_diff_deg};
use moloc_stats::erf::std_normal_cdf;

// ---------------------------------------------------------------------
// Exhaustive k-NN (the reference for every optimised scan).
// ---------------------------------------------------------------------

/// Euclidean distance accumulated in slice order and rooted at the
/// end — the exact arithmetic of the optimised scalar scan
/// (`euclidean_sq` then `sqrt`), so clean-path comparisons can demand
/// bit-identity.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
    }
    sum.sqrt()
}

/// Exhaustive k-NN over `(id, row)` pairs: ranks **every** row by
/// [`euclidean`] distance to `query`, sorts the full table, and keeps
/// the first `k`.
///
/// # Tie order
///
/// The result is ascending by dissimilarity; rows with *exactly*
/// equal dissimilarity are ordered by ascending [`LocationId`]. This
/// is the workspace-wide k-NN contract every optimised path
/// (selection tables, blocked tiles, f32 mirror rescore, sharded
/// merge) must reproduce.
///
/// # Panics
///
/// Panics if `k` is zero or any row's width differs from the query's.
pub fn k_nearest<'a, I>(rows: I, query: &[f64], k: usize) -> Vec<(LocationId, f64)>
where
    I: IntoIterator<Item = (LocationId, &'a [f64])>,
{
    assert!(k > 0, "k must be positive");
    let mut ranked: Vec<(LocationId, f64)> = rows
        .into_iter()
        .map(|(id, row)| (id, euclidean(query, row)))
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Exhaustive masked k-NN for queries with missing (non-finite) APs:
/// a dimension contributes only when both the query and the row are
/// finite, and partial sums are rescaled by
/// `query_len / observed_query_dims` so dissimilarities stay
/// comparable to the full-width metric — the same semantics as the
/// optimised masked scan. Returns the ranked table and the observed
/// query-dimension count (zero means every row ranks 0).
///
/// # Panics
///
/// Panics if `k` is zero or any row's width differs from the query's.
pub fn k_nearest_masked<'a, I>(
    rows: I,
    query: &[f64],
    k: usize,
) -> (Vec<(LocationId, f64)>, usize)
where
    I: IntoIterator<Item = (LocationId, &'a [f64])>,
{
    assert!(k > 0, "k must be positive");
    let observed = query.iter().filter(|v| v.is_finite()).count();
    let scale = if observed == 0 {
        0.0
    } else {
        query.len() as f64 / observed as f64
    };
    let mut ranked: Vec<(LocationId, f64)> = rows
        .into_iter()
        .map(|(id, row)| {
            assert_eq!(row.len(), query.len(), "dimension mismatch");
            let mut sum = 0.0;
            for (x, y) in query.iter().zip(row) {
                if x.is_finite() && y.is_finite() {
                    let d = x - y;
                    sum += d * d;
                }
            }
            (id, (sum * scale).sqrt())
        })
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    (ranked, observed)
}

// ---------------------------------------------------------------------
// Eq. 4 — candidate probabilities from k-NN dissimilarities.
// ---------------------------------------------------------------------

/// Eq. 4 candidate probabilities: `P(x = lᵢ | F) = (1/mᵢ) / Σⱼ (1/mⱼ)`
/// over the k-NN dissimilarities, with an exact match
/// (`mᵢ <= f64::EPSILON`) absorbing all mass, split evenly among tied
/// exact matches. Returns `None` when the input is empty or the
/// inverse-dissimilarity total is non-finite or non-positive (the
/// degenerate case the engine handles with a uniform reset).
pub fn candidate_probabilities(
    neighbors: &[(LocationId, f64)],
) -> Option<Vec<(LocationId, f64)>> {
    if neighbors.is_empty() {
        return None;
    }
    let exact = neighbors
        .iter()
        .filter(|(_, m)| *m <= f64::EPSILON)
        .count();
    if exact > 0 {
        let p = 1.0 / exact as f64;
        return Some(
            neighbors
                .iter()
                .map(|&(id, m)| (id, if m <= f64::EPSILON { p } else { 0.0 }))
                .collect(),
        );
    }
    let total: f64 = neighbors.iter().map(|(_, m)| 1.0 / m).sum();
    if !total.is_finite() || total <= 0.0 {
        return None;
    }
    Some(
        neighbors
            .iter()
            .map(|&(id, m)| (id, (1.0 / m) / total))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Eq. 5 / Eq. 6 — motion matching through the exact erf-based CDF.
// ---------------------------------------------------------------------

/// Probability mass of the window `[center - width/2, center + width/2]`
/// under `N(mean, std²)`, through the **exact** [`std_normal_cdf`]
/// (the optimised kernel uses the tabulated CDF, accurate to `1.3e-7`
/// per evaluation).
pub fn window_mass(mean: f64, std: f64, center: f64, width: f64) -> f64 {
    let lo = (center - width / 2.0 - mean) / std;
    let hi = (center + width / 2.0 - mean) / std;
    (std_normal_cdf(hi) - std_normal_cdf(lo)).max(0.0)
}

/// The stay-in-place probability `P_{i,i}(d, o)`: uninformative
/// direction mass `(α/360) · min(1)` times the `β` window of a
/// zero-mean offset Gaussian with std `stationary_offset_std_m`.
pub fn stationary_probability(
    offset_m: f64,
    alpha_deg: f64,
    beta_m: f64,
    stationary_offset_std_m: f64,
) -> f64 {
    (alpha_deg / 360.0).min(1.0) * window_mass(0.0, stationary_offset_std_m, offset_m, beta_m)
}

/// The trained-pair motion probability `P_{i,j}(d, o)` (Eq. 5) from
/// plain pair parameters: the direction window is evaluated on the
/// signed deviation from the pair's mean direction (so the 0°/360°
/// wrap never splits a window), the offset window directly on the
/// measured offset.
#[allow(clippy::too_many_arguments)]
pub fn pair_probability(
    dir_mean_deg: f64,
    dir_std_deg: f64,
    off_mean_m: f64,
    off_std_m: f64,
    direction_deg: f64,
    offset_m: f64,
    alpha_deg: f64,
    beta_m: f64,
) -> f64 {
    let dev = signed_diff_deg(dir_mean_deg, direction_deg);
    let d_mass = window_mass(0.0, dir_std_deg, dev, alpha_deg);
    let o_mass = window_mass(off_mean_m, off_std_m, offset_m, beta_m);
    d_mass * o_mass
}

// ---------------------------------------------------------------------
// Eq. 7 — posterior fusion with the degenerate fallback.
// ---------------------------------------------------------------------

/// Eq. 7 posterior fusion: reweights `current` fingerprint candidates
/// by the Eq. 6 motion evidence from `previous`, normalizing at the
/// end. `motion(from, to)` supplies `P_{from,to}(d, o)` — callers
/// close over whichever Eq. 5 source (exact oracle, database, kernel)
/// they are auditing. When the total weight is non-finite or at most
/// `degenerate_floor`, returns the fingerprint-only `current`
/// unchanged — the engine's documented fallback.
pub fn fuse_posterior(
    current: &[(LocationId, f64)],
    previous: &[(LocationId, f64)],
    motion: impl Fn(LocationId, LocationId) -> f64,
    degenerate_floor: f64,
) -> Vec<(LocationId, f64)> {
    let weights: Vec<(LocationId, f64)> = current
        .iter()
        .map(|&(to, p_fingerprint)| {
            let p_motion: f64 = previous.iter().map(|&(from, p)| p * motion(from, to)).sum();
            (to, p_fingerprint * p_motion)
        })
        .collect();
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    if !total.is_finite() || total <= degenerate_floor {
        return current.to_vec();
    }
    weights.into_iter().map(|(id, w)| (id, w / total)).collect()
}

// ---------------------------------------------------------------------
// Circular statistics — two-pass references for the accumulators.
// ---------------------------------------------------------------------

/// Circular mean of directions in degrees, or `None` when empty or
/// the mean resultant vector is numerically zero (length below
/// `1e-12`) — the same degeneracy rule as the production accumulator.
pub fn circular_mean_deg(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let mut s = 0.0;
    let mut c = 0.0;
    for &a in angles {
        let r = a.to_radians();
        s += r.sin();
        c += r.cos();
    }
    let n = angles.len() as f64;
    let (s, c) = (s / n, c / n);
    if s.hypot(c) < 1e-12 {
        return None;
    }
    Some(normalize_deg(s.atan2(c).to_degrees()))
}

/// Circular standard deviation in degrees: the population standard
/// deviation of the signed deviations from the circular mean, in a
/// plain second pass. `None` when the mean is undefined.
pub fn circular_std_deg(angles: &[f64]) -> Option<f64> {
    let mean = circular_mean_deg(angles)?;
    let n = angles.len() as f64;
    let ss: f64 = angles
        .iter()
        .map(|&a| signed_diff_deg(mean, a).powi(2))
        .sum();
    Some((ss / n).sqrt())
}

// ---------------------------------------------------------------------
// Checkpoint record framing — an independent reimplementation of the
// session log's wire format for round-trip cross-checks.
// ---------------------------------------------------------------------

/// The checkpoint record magic (`moloc-session`'s `MLCK`).
pub const FRAME_MAGIC: [u8; 4] = *b"MLCK";

/// The checkpoint format version this oracle frames.
pub const FRAME_VERSION: u32 = 2;

/// Frame header length: magic + version `u32` + payload length `u64`.
pub const FRAME_HEADER_LEN: usize = 16;

/// Frame trailer length: one FNV-1a-64 checksum.
pub const FRAME_CHECKSUM_LEN: usize = 8;

/// FNV-1a-64 (the workspace checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames `payload` into one checkpoint record: magic, version,
/// payload length, payload, then FNV-1a-64 over everything before the
/// checksum — byte-identical to `moloc-session`'s `frame_record`.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_CHECKSUM_LEN);
    record.extend_from_slice(&FRAME_MAGIC);
    record.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    record.extend_from_slice(payload);
    let checksum = fnv1a(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Parses one framed record from the front of `bytes`: verifies the
/// magic, reads the declared payload length, and checks the trailing
/// FNV-1a-64. Returns `(version, payload, bytes_consumed)` on
/// success, `None` on any violation (short buffer, wrong magic,
/// checksum mismatch).
pub fn parse_record(bytes: &[u8]) -> Option<(u32, Vec<u8>, usize)> {
    if bytes.len() < FRAME_HEADER_LEN {
        return None;
    }
    if bytes[..4] != FRAME_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let payload_len = usize::try_from(u64::from_le_bytes(bytes[8..16].try_into().ok()?)).ok()?;
    let total = FRAME_HEADER_LEN
        .checked_add(payload_len)?
        .checked_add(FRAME_CHECKSUM_LEN)?;
    if bytes.len() < total {
        return None;
    }
    let body_end = FRAME_HEADER_LEN + payload_len;
    let stored = u64::from_le_bytes(bytes[body_end..total].try_into().ok()?);
    if fnv1a(&bytes[..body_end]) != stored {
        return None;
    }
    Some((version, bytes[FRAME_HEADER_LEN..body_end].to_vec(), total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    #[test]
    fn k_nearest_ranks_and_breaks_ties_by_id() {
        // Rows 2 and 3 are identical (exact tie); row 1 is closest.
        let rows: Vec<(LocationId, Vec<f64>)> = vec![
            (l(3), vec![-50.0, -50.0]),
            (l(1), vec![-40.0, -60.0]),
            (l(2), vec![-50.0, -50.0]),
        ];
        let got = k_nearest(
            rows.iter().map(|(id, r)| (*id, r.as_slice())),
            &[-41.0, -59.0],
            3,
        );
        let ids: Vec<u32> = got.iter().map(|(id, _)| id.get()).collect();
        assert_eq!(ids, [1, 2, 3], "tie between 2 and 3 must order by id");
        assert!(got[0].1 < got[1].1);
        assert_eq!(got[1].1.to_bits(), got[2].1.to_bits());
    }

    #[test]
    fn masked_k_nearest_rescales_by_observed() {
        let rows: Vec<(LocationId, Vec<f64>)> =
            vec![(l(1), vec![-40.0, -60.0]), (l(2), vec![-60.0, -40.0])];
        let query = [-40.0, f64::NAN];
        let (got, observed) =
            k_nearest_masked(rows.iter().map(|(id, r)| (*id, r.as_slice())), &query, 2);
        assert_eq!(observed, 1);
        assert_eq!(got[0].0, l(1));
        // One observed dim of two: (q - r)² · 2, rooted.
        assert!((got[1].1 - (2.0f64 * 400.0).sqrt()).abs() < 1e-12);
        // No observed dims: every row ranks 0, ids ascending.
        let (zeros, observed) = k_nearest_masked(
            rows.iter().map(|(id, r)| (*id, r.as_slice())),
            &[f64::NAN, f64::NAN],
            2,
        );
        assert_eq!(observed, 0);
        assert_eq!(zeros, vec![(l(1), 0.0), (l(2), 0.0)]);
    }

    #[test]
    fn eq4_exact_match_absorbs_all_mass() {
        let got = candidate_probabilities(&[(l(1), 0.0), (l(2), 0.0), (l(3), 3.0)])
            .expect("non-degenerate");
        assert_eq!(got, vec![(l(1), 0.5), (l(2), 0.5), (l(3), 0.0)]);
    }

    #[test]
    fn eq4_inverse_dissimilarity_normalizes() {
        let got = candidate_probabilities(&[(l(1), 1.0), (l(2), 3.0)]).expect("non-degenerate");
        let total: f64 = got.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-15);
        assert!((got[0].1 / got[1].1 - 3.0).abs() < 1e-12, "1/1 vs 1/3");
    }

    #[test]
    fn eq4_degenerate_inputs_are_none() {
        assert_eq!(candidate_probabilities(&[]), None);
        assert_eq!(candidate_probabilities(&[(l(1), f64::NAN)]), None);
        // 1/inf = 0 total → degenerate.
        assert_eq!(candidate_probabilities(&[(l(1), f64::INFINITY)]), None);
    }

    #[test]
    fn eq5_windows_behave() {
        // A wide window centred on the mean captures almost all mass.
        assert!(window_mass(90.0, 5.0, 90.0, 40.0) > 0.99);
        // Stay-in-place prefers small offsets.
        let near = stationary_probability(0.1, 20.0, 1.0, 0.5);
        let far = stationary_probability(5.0, 20.0, 1.0, 0.5);
        assert!(near > 100.0 * far);
        // Wraparound: 359.5° measured against a 0.5° mean is 1° off.
        let p = pair_probability(0.5, 5.0, 5.0, 0.3, 359.5, 5.0, 20.0, 1.0);
        assert!(p > 0.8, "p = {p}");
    }

    #[test]
    fn eq7_normalizes_and_falls_back() {
        let current = [(l(2), 0.5), (l(3), 0.5)];
        let previous = [(l(1), 1.0)];
        // Motion prefers 1→2 strongly.
        let strong = |from: LocationId, to: LocationId| {
            if from == l(1) && to == l(2) {
                0.9
            } else {
                1e-6
            }
        };
        let posterior = fuse_posterior(&current, &previous, strong, 1e-12);
        let total: f64 = posterior.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(posterior[0].1 > 0.99);
        // All-zero motion: degenerate fallback returns current.
        let zero = |_: LocationId, _: LocationId| 0.0;
        assert_eq!(fuse_posterior(&current, &previous, zero, 1e-12), current);
        // NaN motion: also the fallback, never a NaN posterior.
        let nan = |_: LocationId, _: LocationId| f64::NAN;
        assert_eq!(fuse_posterior(&current, &previous, nan, 1e-12), current);
    }

    #[test]
    fn circular_references_handle_wrap_and_degeneracy() {
        let m = circular_mean_deg(&[350.0, 10.0]).expect("defined");
        assert!(!(1.0..=359.0).contains(&m), "m = {m}");
        let s = circular_std_deg(&[80.0, 100.0]).expect("defined");
        assert!((s - 10.0).abs() < 1e-9, "s = {s}");
        assert_eq!(circular_mean_deg(&[]), None);
        // Antipodal pair: zero resultant.
        assert_eq!(circular_mean_deg(&[0.0, 180.0]), None);
    }

    #[test]
    fn frame_round_trips_and_rejects_corruption() {
        let payload = b"checkpoint payload bytes";
        let record = frame_record(payload);
        let (version, parsed, consumed) = parse_record(&record).expect("round trip");
        assert_eq!(version, FRAME_VERSION);
        assert_eq!(parsed, payload);
        assert_eq!(consumed, record.len());
        // Every single-byte flip must be rejected.
        for i in 0..record.len() {
            let mut bad = record.clone();
            bad[i] ^= 0x01;
            assert!(parse_record(&bad).is_none(), "flip at byte {i} accepted");
        }
        // Truncations too.
        for end in 0..record.len() {
            assert!(parse_record(&record[..end]).is_none(), "truncation {end}");
        }
    }
}
