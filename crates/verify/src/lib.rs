#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! Differential-oracle verification layer (DESIGN.md §18).
//!
//! Nine PRs of optimisation — AVX2 k-NN tiles, f32 mirrors, motion
//! kernel lookup tables, work-stealing evaluation, epoch snapshots,
//! checkpointed recovery — each argued "bit-identical to the
//! reference" in its own tests. This crate centralises the references
//! those arguments lean on, in two layers:
//!
//! * [`oracle`] — naive, obviously-correct implementations of the
//!   paper's math and the workspace's wire formats: Eq. 4 candidate
//!   probabilities, Eq. 5/6 motion matching through the exact
//!   `erf`-based CDF, Eq. 7 posterior fusion, exhaustive k-NN with
//!   the documented tie order, circular mean/std, and the checkpoint
//!   record framing. Oracles take primitive inputs (slices, id/value
//!   pairs, Gaussian parameters) so every higher crate can be
//!   compared against them without a dependency cycle.
//! * [`invariant`] — runtime checks of properties that must hold on
//!   every hot-path output (posterior is a probability simplex,
//!   k-NN ranks are monotone with exact tie order, watermarks and
//!   epochs never move backwards). The checks are threaded into the
//!   serving crates and gate on **one relaxed atomic load**, exactly
//!   like the `moloc-obs` recorder: a disabled check costs a single
//!   predicted branch and never feeds back into the computation.
//!
//! The `moloc-audit` binary (in `moloc-eval`) drives the oracles
//! differentially against every optimised path under seeded fault
//! plans and reports divergences as structured JSON; CI runs it as a
//! required gate.
//!
//! # Usage
//!
//! ```
//! use moloc_geometry::LocationId;
//!
//! // Checks are no-ops until enabled.
//! moloc_verify::check_posterior("demo", [(LocationId::new(1), 0.25)]);
//!
//! // Recording mode collects violations instead of panicking.
//! moloc_verify::enable_recording();
//! moloc_verify::check_posterior("demo", [(LocationId::new(1), 0.25)]);
//! let violations = moloc_verify::take_violations();
//! assert_eq!(violations.len(), 1);
//! moloc_verify::set_enabled(false);
//! ```

pub mod invariant;
pub mod oracle;
pub mod report;

pub use invariant::{
    check_epoch, check_knn_ranks, check_posterior, check_watermark, check_weights, Violation,
};
pub use report::{AuditReport, Divergence, SuiteSummary};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Whether invariant checks run. Relaxed is enough: checks are
/// advisory and never synchronize data (the obs-recorder pattern).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Violation handling: `false` panics at the violation site (the
/// test-suite default — a red test carries the full context), `true`
/// records into the global sink (the audit binary's mode — every
/// violation lands in the JSON report instead of aborting the sweep).
static RECORDING: AtomicBool = AtomicBool::new(false);

/// The recorded-violation sink (only fed in recording mode).
static VIOLATIONS: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

/// Turns invariant checking on in panic mode: a violated invariant
/// panics with its context and detail.
pub fn enable() {
    RECORDING.store(false, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns invariant checking on in recording mode: violations
/// accumulate in a global sink for [`take_violations`].
pub fn enable_recording() {
    RECORDING.store(true, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Sets the enabled flag (for tests and audit arms that toggle
/// checking around a region).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether invariant checks are running. One relaxed load — this is
/// the entire disabled-path cost of every check call.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether violations record instead of panic.
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Drains and returns every violation recorded so far.
pub fn take_violations() -> Vec<Violation> {
    std::mem::take(&mut *VIOLATIONS.lock().expect("violation sink poisoned"))
}

/// Number of violations currently recorded.
pub fn violation_count() -> usize {
    VIOLATIONS.lock().expect("violation sink poisoned").len()
}

/// Dispatches one violation: records it in recording mode, panics
/// otherwise. Called by the [`invariant`] checks after [`is_enabled`]
/// passed, so this is never on a disabled hot path.
pub(crate) fn violate(check: &'static str, detail: String) {
    if is_recording() {
        VIOLATIONS
            .lock()
            .expect("violation sink poisoned")
            .push(Violation {
                check: check.to_string(),
                detail,
            });
    } else {
        panic!("moloc-verify invariant violated [{check}]: {detail}");
    }
}

#[cfg(test)]
pub(crate) mod test_gate {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the global enabled/recording state.
    static GATE: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;

    #[test]
    fn disabled_checks_are_no_ops() {
        let _gate = test_gate::lock();
        set_enabled(false);
        let _ = take_violations();
        // A blatantly broken posterior passes silently while disabled.
        check_posterior("test.disabled", [(LocationId::new(1), 42.0)]);
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn recording_mode_collects_instead_of_panicking() {
        let _gate = test_gate::lock();
        enable_recording();
        let _ = take_violations();
        check_posterior("test.record", [(LocationId::new(1), 0.5)]);
        let violations = take_violations();
        set_enabled(false);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].check, "test.record");
        assert!(violations[0].detail.contains("sums to"));
    }

    #[test]
    #[should_panic(expected = "moloc-verify invariant violated")]
    fn panic_mode_panics_at_the_site() {
        let _gate = test_gate::lock();
        enable();
        let result = std::panic::catch_unwind(|| {
            check_posterior("test.panic", [(LocationId::new(1), 0.5)]);
        });
        set_enabled(false);
        // Re-raise outside the gate so the lock is released first.
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }
}
