//! Structured audit reporting for the `moloc-audit` binary.
//!
//! The audit runs every differential suite to completion, collecting
//! divergences and invariant violations instead of aborting at the
//! first mismatch, then serializes one [`AuditReport`] as JSON. CI
//! gates on [`AuditReport::clean`].

use crate::Violation;
use serde::{Deserialize, Serialize};

/// One oracle-vs-optimised mismatch found by a differential suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// The suite that found it, e.g. `knn.blocked`.
    pub suite: String,
    /// Which case inside the suite, e.g. `trace 3 step 17`.
    pub case: String,
    /// What the oracle produced.
    pub expected: String,
    /// What the optimised path produced.
    pub actual: String,
}

/// Per-suite execution summary: how many cases ran and how many
/// diverged, so a clean report still proves coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteSummary {
    /// Suite name, e.g. `eq7.kernel`.
    pub name: String,
    /// Differential comparisons executed.
    pub cases: u64,
    /// Comparisons that diverged from the oracle.
    pub divergences: u64,
}

/// The full audit run: seed, per-suite coverage, and every divergence
/// and invariant violation observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AuditReport {
    /// The fault-plan / input-generation seed the run used.
    pub seed: u64,
    /// Per-suite case counts (in execution order).
    pub suites: Vec<SuiteSummary>,
    /// Every oracle-vs-optimised mismatch.
    pub divergences: Vec<Divergence>,
    /// Every runtime invariant violation recorded during the sweep.
    pub invariant_violations: Vec<Violation>,
}

impl AuditReport {
    /// A fresh report for one audit run.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Closes out one suite: records its summary and appends its
    /// divergences.
    pub fn finish_suite(&mut self, name: &str, cases: u64, divergences: Vec<Divergence>) {
        self.suites.push(SuiteSummary {
            name: name.to_string(),
            cases,
            divergences: divergences.len() as u64,
        });
        self.divergences.extend(divergences);
    }

    /// Whether the run passed: no divergences, no invariant
    /// violations, and at least one case actually executed (an audit
    /// that ran nothing is not evidence of anything).
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
            && self.invariant_violations.is_empty()
            && self.suites.iter().any(|s| s.cases > 0)
    }

    /// Total cases across all suites.
    pub fn total_cases(&self) -> u64 {
        self.suites.iter().map(|s| s.cases).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_not_clean() {
        assert!(!AuditReport::new(7).clean(), "zero cases must not pass");
    }

    #[test]
    fn clean_and_dirty_reports_classify() {
        let mut report = AuditReport::new(2013);
        report.finish_suite("knn.scalar", 128, Vec::new());
        assert!(report.clean());
        assert_eq!(report.total_cases(), 128);

        report.finish_suite(
            "eq4",
            64,
            vec![Divergence {
                suite: "eq4".to_string(),
                case: "step 9".to_string(),
                expected: "0.5".to_string(),
                actual: "0.4".to_string(),
            }],
        );
        assert!(!report.clean());
        assert_eq!(report.suites[1].divergences, 1);
        assert_eq!(report.total_cases(), 192);
    }

    #[test]
    fn report_serializes_round_trip() {
        let mut report = AuditReport::new(42);
        report.finish_suite("frame", 10, Vec::new());
        report.invariant_violations.push(Violation {
            check: "t".to_string(),
            detail: "d".to_string(),
        });
        let json = serde_json::to_string(&report).expect("serialize");
        let back: AuditReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
        assert!(!back.clean());
    }
}
