//! Runtime invariant checks for the serving hot paths.
//!
//! Each check early-returns on one relaxed atomic load while disabled
//! (see the crate docs); when enabled, a violated invariant either
//! panics with full context (the test default) or records into the
//! global sink (the audit binary's mode). Checks never mutate their
//! inputs and never feed back into the computation, so enabling them
//! cannot change pipeline output — only detect that it is wrong.

use crate::{is_enabled, violate};
use moloc_geometry::LocationId;
use serde::{Deserialize, Serialize};

/// Absolute tolerance on the posterior probability-simplex sum. Every
/// normalized path divides by the freshly-computed total, so the
/// realized error is a few ULPs; `1e-12` leaves three orders of
/// margin while still catching any real mass-conservation bug.
pub const SIMPLEX_TOLERANCE: f64 = 1e-12;

/// One recorded invariant violation (recording mode only).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The check's context label, e.g. `core.batch.posterior`.
    pub check: String,
    /// Human-readable description of what failed.
    pub detail: String,
}

/// Checks that `posterior` is a probability simplex: every weight
/// finite and non-negative, the total within
/// [`SIMPLEX_TOLERANCE`] of 1. No-op while disabled.
#[inline]
pub fn check_posterior<I>(check: &'static str, posterior: I)
where
    I: IntoIterator<Item = (LocationId, f64)>,
{
    if !is_enabled() {
        return;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for (location, p) in posterior {
        if !p.is_finite() || p < 0.0 {
            violate(
                check,
                format!("posterior weight for {location} is {p} (finite, >= 0 required)"),
            );
            return;
        }
        total += p;
        n += 1;
    }
    if n == 0 {
        violate(check, "posterior is empty".to_string());
        return;
    }
    if (total - 1.0).abs() > SIMPLEX_TOLERANCE {
        violate(
            check,
            format!("posterior over {n} candidates sums to {total:.17} (1 ± 1e-12 required)"),
        );
    }
}

/// Checks that every candidate weight is finite and non-negative
/// (pre-normalization Eq. 7 weights). No-op while disabled.
#[inline]
pub fn check_weights<I>(check: &'static str, weights: I)
where
    I: IntoIterator<Item = (LocationId, f64)>,
{
    if !is_enabled() {
        return;
    }
    for (location, w) in weights {
        if !w.is_finite() || w < 0.0 {
            violate(
                check,
                format!("candidate weight for {location} is {w} (finite, >= 0 required)"),
            );
            return;
        }
    }
}

/// Checks a k-NN result's rank contract: dissimilarities ascending,
/// exact ties broken by strictly ascending location id. No-op while
/// disabled.
#[inline]
pub fn check_knn_ranks<I>(check: &'static str, neighbors: I)
where
    I: IntoIterator<Item = (LocationId, f64)>,
{
    if !is_enabled() {
        return;
    }
    let mut prev: Option<(LocationId, f64)> = None;
    for (location, dissimilarity) in neighbors {
        if dissimilarity.is_nan() {
            violate(check, format!("NaN dissimilarity at {location}"));
            return;
        }
        if let Some((prev_loc, prev_diss)) = prev {
            let ordered = dissimilarity > prev_diss
                || (dissimilarity == prev_diss && location > prev_loc);
            if !ordered {
                violate(
                    check,
                    format!(
                        "rank order broken: ({prev_loc}, {prev_diss}) precedes \
                         ({location}, {dissimilarity}) — dissimilarity must ascend, \
                         ties by lower id"
                    ),
                );
                return;
            }
        }
        prev = Some((location, dissimilarity));
    }
}

/// Checks reorder-buffer watermark monotonicity: the watermark after
/// an operation is never below the watermark before it. No-op while
/// disabled.
#[inline]
pub fn check_watermark(check: &'static str, before: u64, after: u64) {
    if !is_enabled() {
        return;
    }
    if after < before {
        violate(
            check,
            format!("watermark moved backwards: {before} -> {after}"),
        );
    }
}

/// Checks snapshot epoch monotonicity: a publisher or reader never
/// observes an epoch below one it already observed. No-op while
/// disabled.
#[inline]
pub fn check_epoch(check: &'static str, before: u64, after: u64) {
    if !is_enabled() {
        return;
    }
    if after < before {
        violate(check, format!("epoch moved backwards: {before} -> {after}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enable_recording, set_enabled, take_violations, test_gate};

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    /// Runs `f` with recording enabled and returns what it recorded.
    fn recorded(f: impl FnOnce()) -> Vec<Violation> {
        let _gate = test_gate::lock();
        enable_recording();
        let _ = take_violations();
        f();
        let violations = take_violations();
        set_enabled(false);
        violations
    }

    #[test]
    fn valid_posterior_passes() {
        let v = recorded(|| {
            check_posterior("t", [(l(1), 0.25), (l(2), 0.5), (l(3), 0.25)]);
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_unit_sum_and_bad_weights_are_flagged() {
        let v = recorded(|| {
            check_posterior("t.sum", [(l(1), 0.3), (l(2), 0.3)]);
            check_posterior("t.nan", [(l(1), f64::NAN)]);
            check_posterior("t.neg", [(l(1), -0.25), (l(2), 1.25)]);
            check_posterior("t.empty", std::iter::empty());
        });
        let checks: Vec<&str> = v.iter().map(|v| v.check.as_str()).collect();
        assert_eq!(checks, ["t.sum", "t.nan", "t.neg", "t.empty"]);
    }

    #[test]
    fn knn_tie_order_is_enforced_exactly() {
        let v = recorded(|| {
            // Correct: ascending, tie to lower id.
            check_knn_ranks("t.ok", [(l(1), 1.0), (l(2), 1.0), (l(3), 2.0)]);
            // Tie broken the wrong way.
            check_knn_ranks("t.tie", [(l(2), 1.0), (l(1), 1.0)]);
            // Descending rank.
            check_knn_ranks("t.desc", [(l(1), 2.0), (l(2), 1.0)]);
            // Duplicate entry (equal rank, equal id).
            check_knn_ranks("t.dup", [(l(1), 1.0), (l(1), 1.0)]);
        });
        let checks: Vec<&str> = v.iter().map(|v| v.check.as_str()).collect();
        assert_eq!(checks, ["t.tie", "t.desc", "t.dup"]);
    }

    #[test]
    fn watermark_and_epoch_monotonicity() {
        let v = recorded(|| {
            check_watermark("t.wm.ok", 3, 3);
            check_watermark("t.wm.ok2", 3, 7);
            check_watermark("t.wm.bad", 7, 3);
            check_epoch("t.ep.ok", 0, 1);
            check_epoch("t.ep.bad", 2, 1);
        });
        let checks: Vec<&str> = v.iter().map(|v| v.check.as_str()).collect();
        assert_eq!(checks, ["t.wm.bad", "t.ep.bad"]);
    }
}
