//! Line segments and intersection predicates.
//!
//! Segments model walls and partition boards; the key query is whether a
//! walking path or radio path between two points crosses a wall.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A directed line segment from `a` to `b`.
///
/// # Examples
///
/// ```
/// use moloc_geometry::{Segment, Vec2};
///
/// let s = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 0.0));
/// let t = Segment::new(Vec2::new(1.0, -1.0), Vec2::new(1.0, 1.0));
/// assert!(s.intersects(&t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Creates a segment between two points.
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Self { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// The midpoint.
    pub fn midpoint(&self) -> Vec2 {
        self.a.lerp(self.b, 0.5)
    }

    /// Whether two segments intersect (including touching endpoints and
    /// collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        orientation_based_intersect(self.a, self.b, other.a, other.b)
    }

    /// The intersection point when the segments cross at a single point
    /// (not collinear overlap), `None` otherwise.
    pub fn intersection_point(&self, other: &Segment) -> Option<Vec2> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() < 1e-12 {
            return None; // parallel or collinear
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Minimum distance from a point to this segment.
    pub fn distance_to_point(&self, p: Vec2) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq < 1e-24 {
            return self.a.dist(p);
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        (self.a + d * t).dist(p)
    }

    /// The segment with endpoints swapped.
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }
}

fn orient(a: Vec2, b: Vec2, c: Vec2) -> i8 {
    let v = (b - a).cross(c - a);
    if v > 1e-12 {
        1
    } else if v < -1e-12 {
        -1
    } else {
        0
    }
}

fn on_segment(a: Vec2, b: Vec2, p: Vec2) -> bool {
    p.x >= a.x.min(b.x) - 1e-12
        && p.x <= a.x.max(b.x) + 1e-12
        && p.y >= a.y.min(b.y) - 1e-12
        && p.y <= a.y.max(b.y) + 1e-12
}

fn orientation_based_intersect(p1: Vec2, p2: Vec2, p3: Vec2, p4: Vec2) -> bool {
    let o1 = orient(p1, p2, p3);
    let o2 = orient(p1, p2, p4);
    let o3 = orient(p3, p4, p1);
    let o4 = orient(p3, p4, p2);
    if o1 != o2 && o3 != o4 {
        return true;
    }
    (o1 == 0 && on_segment(p1, p2, p3))
        || (o2 == 0 && on_segment(p1, p2, p4))
        || (o3 == 0 && on_segment(p3, p4, p1))
        || (o4 == 0 && on_segment(p3, p4, p2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Vec2::new(ax, ay), Vec2::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        let t = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s.intersects(&t));
        let p = s.intersection_point(&t).unwrap();
        assert!(p.dist(Vec2::new(1.0, 1.0)) < 1e-12);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s.intersects(&t));
        assert!(s.intersection_point(&t).is_none());
    }

    #[test]
    fn touching_endpoint_counts_as_intersection() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(1.0, 0.0, 1.0, 1.0);
        assert!(s.intersects(&t));
    }

    #[test]
    fn collinear_overlap_intersects_without_point() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s.intersects(&t));
        // Not a single crossing point.
        assert!(s.intersection_point(&t).is_none());
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s.intersects(&t));
    }

    #[test]
    fn parallel_segments_do_not_cross() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        let t = seg(1.0, 0.0, 3.0, 2.0);
        assert!(!s.intersects(&t));
    }

    #[test]
    fn near_miss_does_not_intersect() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(0.5, 1e-6, 0.5, 1.0);
        assert!(!s.intersects(&t));
    }

    #[test]
    fn distance_to_point_cases() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        // Perpendicular foot inside the segment.
        assert!((s.distance_to_point(Vec2::new(1.0, 3.0)) - 3.0).abs() < 1e-12);
        // Past the end: distance to endpoint.
        assert!((s.distance_to_point(Vec2::new(5.0, 0.0)) - 3.0).abs() < 1e-12);
        // On the segment.
        assert!(s.distance_to_point(Vec2::new(0.5, 0.0)) < 1e-12);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!((s.distance_to_point(Vec2::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Vec2::new(1.5, 2.0));
        assert_eq!(s.reversed().a, s.b);
    }
}
