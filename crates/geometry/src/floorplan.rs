//! Floor plans: bounded halls with attenuating walls and impassable
//! obstacles.
//!
//! A [`FloorPlan`] plays two roles in the reproduction:
//!
//! * **Radio**: each [`Wall`] crossed by the straight path from an access
//!   point to a receiver adds its attenuation to the path loss (the wall
//!   attenuation factor model of RADAR).
//! * **Mobility**: walls and obstacle polygons block walking, so the
//!   walkable graph edges and the map-derived offsets differ from plain
//!   straight-line geometry — the *consistency principle* of Sec. IV-A.

use crate::polygon::{Aabb, Polygon};
use crate::segment::Segment;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A wall or partition board with a radio attenuation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// The wall's footprint as a segment.
    pub segment: Segment,
    /// Signal attenuation when crossing the wall, in dB (non-negative).
    pub attenuation_db: f64,
    /// Whether the wall also blocks walking (partition boards do; a desk
    /// row modeled as a wall might only attenuate).
    pub blocks_walking: bool,
}

impl Wall {
    /// A partition: attenuates radio and blocks walking.
    pub fn partition(a: Vec2, b: Vec2, attenuation_db: f64) -> Self {
        Self {
            segment: Segment::new(a, b),
            attenuation_db,
            blocks_walking: true,
        }
    }

    /// A radio-only attenuator (e.g. shelving) that people can walk
    /// around/through in the aisle model.
    pub fn attenuator(a: Vec2, b: Vec2, attenuation_db: f64) -> Self {
        Self {
            segment: Segment::new(a, b),
            attenuation_db,
            blocks_walking: false,
        }
    }
}

/// A floor plan: outer bounds, walls, and obstacle footprints.
///
/// # Examples
///
/// ```
/// use moloc_geometry::floorplan::{FloorPlan, Wall};
/// use moloc_geometry::polygon::Aabb;
/// use moloc_geometry::Vec2;
///
/// let bounds = Aabb::new(Vec2::ZERO, Vec2::new(40.8, 16.0)).unwrap();
/// let mut plan = FloorPlan::new(bounds);
/// plan.add_wall(Wall::partition(Vec2::new(10.0, 0.0), Vec2::new(10.0, 8.0), 5.0));
/// let att = plan.attenuation_db(Vec2::new(5.0, 4.0), Vec2::new(15.0, 4.0));
/// assert_eq!(att, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorPlan {
    bounds: Aabb,
    walls: Vec<Wall>,
    obstacles: Vec<Polygon>,
}

impl FloorPlan {
    /// Creates an empty plan with the given outer bounds.
    pub fn new(bounds: Aabb) -> Self {
        Self {
            bounds,
            walls: Vec::new(),
            obstacles: Vec::new(),
        }
    }

    /// The outer bounds.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Adds a wall.
    ///
    /// # Panics
    ///
    /// Panics if the attenuation is negative or not finite.
    pub fn add_wall(&mut self, wall: Wall) -> &mut Self {
        assert!(
            wall.attenuation_db.is_finite() && wall.attenuation_db >= 0.0,
            "wall attenuation must be finite and non-negative"
        );
        self.walls.push(wall);
        self
    }

    /// Adds an impassable obstacle footprint.
    pub fn add_obstacle(&mut self, obstacle: Polygon) -> &mut Self {
        self.obstacles.push(obstacle);
        self
    }

    /// The walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// The obstacles.
    pub fn obstacles(&self) -> &[Polygon] {
        &self.obstacles
    }

    /// Total wall attenuation along the straight radio path `a → b`,
    /// in dB.
    pub fn attenuation_db(&self, a: Vec2, b: Vec2) -> f64 {
        let path = Segment::new(a, b);
        self.walls
            .iter()
            .filter(|w| w.segment.intersects(&path))
            .map(|w| w.attenuation_db)
            .sum()
    }

    /// Number of walls crossed by the straight path `a → b`.
    pub fn wall_crossings(&self, a: Vec2, b: Vec2) -> usize {
        let path = Segment::new(a, b);
        self.walls
            .iter()
            .filter(|w| w.segment.intersects(&path))
            .count()
    }

    /// Whether one can walk straight from `a` to `b`: both endpoints in
    /// bounds, no walking-blocking wall crossed, no obstacle blocking.
    pub fn is_walkable(&self, a: Vec2, b: Vec2) -> bool {
        if !self.bounds.contains(a) || !self.bounds.contains(b) {
            return false;
        }
        let path = Segment::new(a, b);
        if self
            .walls
            .iter()
            .any(|w| w.blocks_walking && w.segment.intersects(&path))
        {
            return false;
        }
        !self.obstacles.iter().any(|o| o.blocks(&path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hall() -> FloorPlan {
        FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(40.0, 16.0)).unwrap())
    }

    #[test]
    fn empty_plan_is_fully_walkable() {
        let plan = hall();
        assert!(plan.is_walkable(Vec2::new(1.0, 1.0), Vec2::new(39.0, 15.0)));
        assert_eq!(
            plan.attenuation_db(Vec2::new(1.0, 1.0), Vec2::new(39.0, 15.0)),
            0.0
        );
    }

    #[test]
    fn out_of_bounds_is_not_walkable() {
        let plan = hall();
        assert!(!plan.is_walkable(Vec2::new(-1.0, 1.0), Vec2::new(5.0, 5.0)));
        assert!(!plan.is_walkable(Vec2::new(5.0, 5.0), Vec2::new(41.0, 1.0)));
    }

    #[test]
    fn walls_attenuate_cumulatively() {
        let mut plan = hall();
        plan.add_wall(Wall::partition(
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 16.0),
            5.0,
        ));
        plan.add_wall(Wall::partition(
            Vec2::new(20.0, 0.0),
            Vec2::new(20.0, 16.0),
            3.0,
        ));
        let a = Vec2::new(5.0, 8.0);
        let b = Vec2::new(25.0, 8.0);
        assert_eq!(plan.attenuation_db(a, b), 8.0);
        assert_eq!(plan.wall_crossings(a, b), 2);
        // A path crossing only the first wall.
        assert_eq!(plan.attenuation_db(a, Vec2::new(15.0, 8.0)), 5.0);
    }

    #[test]
    fn partitions_block_walking_but_attenuators_do_not() {
        let mut plan = hall();
        plan.add_wall(Wall::partition(
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 16.0),
            5.0,
        ));
        plan.add_wall(Wall::attenuator(
            Vec2::new(20.0, 0.0),
            Vec2::new(20.0, 16.0),
            3.0,
        ));
        assert!(!plan.is_walkable(Vec2::new(5.0, 8.0), Vec2::new(15.0, 8.0)));
        assert!(plan.is_walkable(Vec2::new(15.0, 8.0), Vec2::new(25.0, 8.0)));
    }

    #[test]
    fn obstacles_block_walking() {
        let mut plan = hall();
        plan.add_obstacle(Polygon::rect(Vec2::new(9.0, 7.0), Vec2::new(11.0, 9.0)).unwrap());
        assert!(!plan.is_walkable(Vec2::new(5.0, 8.0), Vec2::new(15.0, 8.0)));
        // Going around (above) is fine.
        assert!(plan.is_walkable(Vec2::new(5.0, 12.0), Vec2::new(15.0, 12.0)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_attenuation_panics() {
        let mut plan = hall();
        plan.add_wall(Wall::partition(Vec2::ZERO, Vec2::new(1.0, 0.0), -1.0));
    }

    #[test]
    fn path_parallel_to_wall_not_attenuated() {
        let mut plan = hall();
        plan.add_wall(Wall::partition(
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 8.0),
            5.0,
        ));
        // Walk north of the wall's extent.
        assert_eq!(
            plan.attenuation_db(Vec2::new(5.0, 12.0), Vec2::new(15.0, 12.0)),
            0.0
        );
        assert!(plan.is_walkable(Vec2::new(5.0, 12.0), Vec2::new(15.0, 12.0)));
    }
}
