//! Simple polygons and axis-aligned boxes.
//!
//! Polygons model furniture/column footprints that block walking;
//! [`Aabb`] models the hall's outer boundary.

use crate::segment::Segment;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use moloc_geometry::polygon::Aabb;
/// use moloc_geometry::Vec2;
///
/// let hall = Aabb::new(Vec2::ZERO, Vec2::new(40.8, 16.0)).unwrap();
/// assert!(hall.contains(Vec2::new(20.0, 8.0)));
/// assert!(!hall.contains(Vec2::new(-1.0, 8.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Vec2,
    max: Vec2,
}

/// Error constructing a degenerate [`Aabb`] or [`Polygon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidShapeError;

impl std::fmt::Display for InvalidShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shape is degenerate (empty box or fewer than 3 vertices)"
        )
    }
}

impl std::error::Error for InvalidShapeError {}

impl Aabb {
    /// Creates a box from its min and max corners.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidShapeError`] when `min` is not strictly below
    /// `max` in both coordinates.
    pub fn new(min: Vec2, max: Vec2) -> Result<Self, InvalidShapeError> {
        if min.x >= max.x || min.y >= max.y {
            return Err(InvalidShapeError);
        }
        Ok(Self { min, max })
    }

    /// The min corner.
    pub fn min(&self) -> Vec2 {
        self.min
    }

    /// The max corner.
    pub fn max(&self) -> Vec2 {
        self.max
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether the point lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The center point.
    pub fn center(&self) -> Vec2 {
        self.min.lerp(self.max, 0.5)
    }
}

/// A simple polygon given by its vertices in order.
///
/// # Examples
///
/// ```
/// use moloc_geometry::polygon::Polygon;
/// use moloc_geometry::Vec2;
///
/// let square = Polygon::new(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(1.0, 0.0),
///     Vec2::new(1.0, 1.0),
///     Vec2::new(0.0, 1.0),
/// ])?;
/// assert!(square.contains(Vec2::new(0.5, 0.5)));
/// # Ok::<(), moloc_geometry::polygon::InvalidShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Vec2>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidShapeError`] with fewer than three vertices.
    pub fn new(vertices: Vec<Vec2>) -> Result<Self, InvalidShapeError> {
        if vertices.len() < 3 {
            return Err(InvalidShapeError);
        }
        Ok(Self { vertices })
    }

    /// An axis-aligned rectangle polygon.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidShapeError`] for an empty box.
    pub fn rect(min: Vec2, max: Vec2) -> Result<Self, InvalidShapeError> {
        let b = Aabb::new(min, max)?;
        Self::new(vec![
            b.min(),
            Vec2::new(b.max().x, b.min().y),
            b.max(),
            Vec2::new(b.min().x, b.max().y),
        ])
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// Iterates over the boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Point-in-polygon by ray casting (boundary points may go either
    /// way; obstacles in the simulator are used with strictly interior or
    /// strictly exterior queries).
    pub fn contains(&self, p: Vec2) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (vi, vj) = (self.vertices[i], self.vertices[j]);
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Whether a segment crosses the polygon boundary or has an endpoint
    /// strictly inside — i.e. whether walking along `s` is blocked by
    /// this obstacle.
    pub fn blocks(&self, s: &Segment) -> bool {
        self.contains(s.a) || self.contains(s.b) || self.edges().any(|e| e.intersects(&s.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rect(Vec2::ZERO, Vec2::new(1.0, 1.0)).unwrap()
    }

    #[test]
    fn aabb_rejects_degenerate() {
        assert!(Aabb::new(Vec2::ZERO, Vec2::ZERO).is_err());
        assert!(Aabb::new(Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0)).is_err());
    }

    #[test]
    fn aabb_contains_boundary() {
        let b = Aabb::new(Vec2::ZERO, Vec2::new(2.0, 2.0)).unwrap();
        assert!(b.contains(Vec2::ZERO));
        assert!(b.contains(Vec2::new(2.0, 2.0)));
        assert!(!b.contains(Vec2::new(2.0, 2.1)));
        assert_eq!(b.center(), Vec2::new(1.0, 1.0));
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 2.0);
    }

    #[test]
    fn polygon_needs_three_vertices() {
        assert!(Polygon::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]).is_err());
    }

    #[test]
    fn point_in_square() {
        let sq = unit_square();
        assert!(sq.contains(Vec2::new(0.5, 0.5)));
        assert!(!sq.contains(Vec2::new(1.5, 0.5)));
        assert!(!sq.contains(Vec2::new(-0.5, 0.5)));
    }

    #[test]
    fn point_in_concave_polygon() {
        // L-shape: the notch at the top-right is outside.
        let l = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(l.contains(Vec2::new(0.5, 1.5)));
        assert!(l.contains(Vec2::new(1.5, 0.5)));
        assert!(!l.contains(Vec2::new(1.5, 1.5)));
    }

    #[test]
    fn edges_close_the_loop() {
        let sq = unit_square();
        let edges: Vec<_> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, edges[0].a);
        let perimeter: f64 = edges.iter().map(Segment::length).sum();
        assert!((perimeter - 4.0).abs() < 1e-12);
    }

    #[test]
    fn blocks_detects_crossing_and_containment() {
        let sq = unit_square();
        // Passes straight through.
        let through = Segment::new(Vec2::new(-1.0, 0.5), Vec2::new(2.0, 0.5));
        assert!(sq.blocks(&through));
        // Fully outside.
        let outside = Segment::new(Vec2::new(-1.0, 2.0), Vec2::new(2.0, 2.0));
        assert!(!sq.blocks(&outside));
        // One endpoint inside.
        let dangling = Segment::new(Vec2::new(0.5, 0.5), Vec2::new(3.0, 3.0));
        assert!(sq.blocks(&dangling));
    }
}
