//! The walkable-path graph between reference locations.
//!
//! Nodes are [`LocationId`]s; an undirected edge connects two locations a
//! user can walk between directly (the paper's notion of *adjacent*
//! locations). [`WalkGraph::from_grid`] derives the graph from a
//! [`ReferenceGrid`] and a [`FloorPlan`]: 4-neighbors are connected
//! unless a partition or obstacle blocks the straight aisle between
//! them — so geographic closeness does not imply adjacency, exactly the
//! consistency pitfall Sec. IV-A warns about.

use crate::floorplan::FloorPlan;
use crate::grid::{LocationId, ReferenceGrid};
use serde::{Deserialize, Serialize};

/// An undirected weighted graph over reference locations.
///
/// # Examples
///
/// ```
/// use moloc_geometry::graph::WalkGraph;
/// use moloc_geometry::grid::{LocationId, ReferenceGrid};
/// use moloc_geometry::floorplan::FloorPlan;
/// use moloc_geometry::polygon::Aabb;
/// use moloc_geometry::Vec2;
///
/// let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0)?;
/// let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
/// let graph = WalkGraph::from_grid(&grid, &plan);
/// assert!(graph.are_adjacent(LocationId::new(1), LocationId::new(2)));
/// assert!(!graph.are_adjacent(LocationId::new(1), LocationId::new(6)));
/// # Ok::<(), moloc_geometry::grid::InvalidGridError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkGraph {
    node_count: usize,
    /// adjacency[i] = sorted list of (neighbor index, edge length).
    adjacency: Vec<Vec<(usize, f64)>>,
}

impl WalkGraph {
    /// Creates a graph with `node_count` isolated nodes.
    pub fn with_nodes(node_count: usize) -> Self {
        Self {
            node_count,
            adjacency: vec![Vec::new(); node_count],
        }
    }

    /// Builds the walkable graph of a reference grid inside a floor
    /// plan: 4-neighbor cells are joined when the straight segment
    /// between them is walkable.
    pub fn from_grid(grid: &ReferenceGrid, plan: &FloorPlan) -> Self {
        let mut g = Self::with_nodes(grid.len());
        for id in grid.ids() {
            for n in grid.neighbors4(id) {
                if n > id && plan.is_walkable(grid.position(id), grid.position(n)) {
                    g.add_edge(id, n, grid.distance(id, n));
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge. Re-adding an existing edge updates its
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range, the ids are equal, or the
    /// length is not finite and positive.
    pub fn add_edge(&mut self, a: LocationId, b: LocationId, length: f64) {
        assert!(a != b, "self-loops are not allowed");
        assert!(
            length.is_finite() && length > 0.0,
            "edge length must be finite and positive"
        );
        let (ia, ib) = (self.check_index(a), self.check_index(b));
        Self::upsert(&mut self.adjacency[ia], ib, length);
        Self::upsert(&mut self.adjacency[ib], ia, length);
    }

    fn upsert(list: &mut Vec<(usize, f64)>, target: usize, length: f64) {
        match list.iter_mut().find(|(n, _)| *n == target) {
            Some(entry) => entry.1 = length,
            None => {
                list.push((target, length));
                list.sort_by_key(|&(n, _)| n);
            }
        }
    }

    fn check_index(&self, id: LocationId) -> usize {
        let idx = id.index();
        assert!(idx < self.node_count, "{id} out of range for graph");
        idx
    }

    /// Whether an edge joins `a` and `b`.
    pub fn are_adjacent(&self, a: LocationId, b: LocationId) -> bool {
        if a == b {
            return false;
        }
        let (ia, ib) = (self.check_index(a), self.check_index(b));
        self.adjacency[ia].iter().any(|&(n, _)| n == ib)
    }

    /// The edge length between adjacent nodes, `None` otherwise.
    pub fn edge_length(&self, a: LocationId, b: LocationId) -> Option<f64> {
        if a == b {
            return None;
        }
        let (ia, ib) = (self.check_index(a), self.check_index(b));
        self.adjacency[ia]
            .iter()
            .find(|&&(n, _)| n == ib)
            .map(|&(_, l)| l)
    }

    /// The neighbors of `a` with edge lengths.
    pub fn neighbors(&self, a: LocationId) -> impl Iterator<Item = (LocationId, f64)> + '_ {
        let ia = self.check_index(a);
        self.adjacency[ia]
            .iter()
            .map(|&(n, l)| (LocationId::from_index(n), l))
    }

    /// Degree of a node.
    pub fn degree(&self, a: LocationId) -> usize {
        let ia = self.check_index(a);
        self.adjacency[ia].len()
    }

    /// Iterates over all undirected edges once (a < b).
    pub fn edges(&self) -> impl Iterator<Item = (LocationId, LocationId, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(ia, list)| {
            list.iter()
                .filter(move |&&(ib, _)| ia < ib)
                .map(move |&(ib, l)| (LocationId::from_index(ia), LocationId::from_index(ib), l))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Wall;
    use crate::polygon::Aabb;
    use crate::vec2::Vec2;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn grid_3x2() -> ReferenceGrid {
        // ids: 1 2 3 / 4 5 6, spacing 2 m.
        ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap()
    }

    fn open_plan() -> FloorPlan {
        FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap())
    }

    #[test]
    fn open_grid_connects_all_neighbors() {
        let g = WalkGraph::from_grid(&grid_3x2(), &open_plan());
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 7); // 4 horizontal + 3 vertical
        assert!(g.are_adjacent(l(1), l(2)));
        assert!(g.are_adjacent(l(2), l(5)));
        assert!(!g.are_adjacent(l(1), l(5))); // diagonal
        assert!(!g.are_adjacent(l(1), l(3))); // two apart
    }

    #[test]
    fn partition_cuts_an_edge() {
        let grid = grid_3x2();
        let mut plan = open_plan();
        // Vertical partition between columns 1 and 2, full height.
        plan.add_wall(Wall::partition(
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 5.0),
            5.0,
        ));
        let g = WalkGraph::from_grid(&grid, &plan);
        assert!(!g.are_adjacent(l(1), l(2)));
        assert!(!g.are_adjacent(l(4), l(5)));
        assert!(g.are_adjacent(l(2), l(3)));
        assert!(g.are_adjacent(l(1), l(4)));
    }

    #[test]
    fn edge_lengths_match_grid_spacing() {
        let g = WalkGraph::from_grid(&grid_3x2(), &open_plan());
        assert!((g.edge_length(l(1), l(2)).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(g.edge_length(l(1), l(5)), None);
        assert_eq!(g.edge_length(l(1), l(1)), None);
    }

    #[test]
    fn add_edge_updates_existing() {
        let mut g = WalkGraph::with_nodes(3);
        g.add_edge(l(1), l(2), 1.0);
        g.add_edge(l(1), l(2), 2.5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_length(l(1), l(2)), Some(2.5));
        assert_eq!(g.edge_length(l(2), l(1)), Some(2.5));
    }

    #[test]
    fn neighbors_and_degree() {
        let g = WalkGraph::from_grid(&grid_3x2(), &open_plan());
        let n: Vec<_> = g.neighbors(l(2)).map(|(id, _)| id).collect();
        assert_eq!(n, vec![l(1), l(3), l(5)]);
        assert_eq!(g.degree(l(2)), 3);
        assert_eq!(g.degree(l(1)), 2);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = WalkGraph::from_grid(&grid_3x2(), &open_plan());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = WalkGraph::with_nodes(2);
        g.add_edge(l(1), l(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_node_panics() {
        let mut g = WalkGraph::with_nodes(2);
        g.add_edge(l(1), l(5), 1.0);
    }
}
