//! Points and vectors in the plane, with compass bearings.
//!
//! The workspace convention for directions follows the paper's digital
//! compass: bearings are degrees in `[0, 360)` with **0° = north (+y)**
//! increasing **clockwise**, so east (+x) is 90°.

use moloc_stats::circular::normalize_deg;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in the plane, in meters.
///
/// # Examples
///
/// ```
/// use moloc_geometry::vec2::Vec2;
///
/// let p = Vec2::new(1.0, 2.0) + Vec2::new(3.0, -1.0);
/// assert_eq!(p, Vec2::new(4.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    pub fn dist(self, other: Vec2) -> f64 {
        (other - self).norm()
    }

    /// The unit vector in the same direction, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// The compass bearing from `self` to `to`: 0° = north (+y),
    /// clockwise, in `[0, 360)`.
    ///
    /// Returns 0 for coincident points (callers should treat zero-length
    /// displacements separately; see [`Vec2::bearing_deg_to_checked`]).
    pub fn bearing_deg_to(self, to: Vec2) -> f64 {
        self.bearing_deg_to_checked(to).unwrap_or(0.0)
    }

    /// Like [`Vec2::bearing_deg_to`], but `None` for coincident points.
    pub fn bearing_deg_to_checked(self, to: Vec2) -> Option<f64> {
        let d = to - self;
        if d.norm() < 1e-12 {
            return None;
        }
        Some(normalize_deg(d.x.atan2(d.y).to_degrees()))
    }

    /// The displacement of walking `distance` meters along compass
    /// `bearing_deg` from `self`.
    pub fn walk(self, bearing_deg: f64, distance: f64) -> Vec2 {
        let rad = bearing_deg.to_radians();
        self + Vec2::new(rad.sin(), rad.cos()) * distance
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl std::fmt::Display for Vec2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(a + Vec2::ZERO, a);
    }

    #[test]
    fn dot_and_cross() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert_eq!(e1.dot(e2), 0.0);
        assert_eq!(e1.cross(e2), 1.0);
        assert_eq!(e2.cross(e1), -1.0);
    }

    #[test]
    fn norm_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.dist(a), 5.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec2::new(10.0, -4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn bearings_follow_compass_convention() {
        let o = Vec2::ZERO;
        assert!((o.bearing_deg_to(Vec2::new(0.0, 1.0)) - 0.0).abs() < 1e-9); // N
        assert!((o.bearing_deg_to(Vec2::new(1.0, 0.0)) - 90.0).abs() < 1e-9); // E
        assert!((o.bearing_deg_to(Vec2::new(0.0, -1.0)) - 180.0).abs() < 1e-9); // S
        assert!((o.bearing_deg_to(Vec2::new(-1.0, 0.0)) - 270.0).abs() < 1e-9); // W
        assert!((o.bearing_deg_to(Vec2::new(1.0, 1.0)) - 45.0).abs() < 1e-9); // NE
    }

    #[test]
    fn bearing_of_coincident_points() {
        let p = Vec2::new(2.0, 2.0);
        assert_eq!(p.bearing_deg_to_checked(p), None);
        assert_eq!(p.bearing_deg_to(p), 0.0);
    }

    #[test]
    fn walk_inverts_bearing() {
        let from = Vec2::new(5.0, -2.0);
        for bearing in [0.0, 37.0, 90.0, 210.5, 359.0] {
            let to = from.walk(bearing, 7.5);
            assert!((from.dist(to) - 7.5).abs() < 1e-9);
            assert!((from.bearing_deg_to(to) - bearing).abs() < 1e-9);
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Vec2::new(1.0, 2.5).to_string(), "(1.000, 2.500)");
    }
}
