//! Shortest walkable paths over a [`WalkGraph`].
//!
//! The motion database's *coarse filter* compares each crowdsourced
//! offset to the map-derived walkable distance, and the map-based
//! database ablation needs the same quantities; both use Dijkstra over
//! the walk graph.

use crate::graph::WalkGraph;
use crate::grid::LocationId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: LocationId,
    dist: Vec<f64>,
    prev: Vec<Option<usize>>,
}

impl ShortestPaths {
    /// The source node.
    pub fn source(&self) -> LocationId {
        self.source
    }

    /// The walkable distance to `target`, or `None` when unreachable.
    pub fn distance(&self, target: LocationId) -> Option<f64> {
        let d = self.dist[target.index()];
        d.is_finite().then_some(d)
    }

    /// The node sequence from the source to `target` inclusive, or
    /// `None` when unreachable.
    pub fn path(&self, target: LocationId) -> Option<Vec<LocationId>> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut out = vec![target];
        let mut cur = target.index();
        while let Some(p) = self.prev[cur] {
            out.push(LocationId::from_index(p));
            cur = p;
        }
        out.reverse();
        Some(out)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (reverse order), ties by node for
        // determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's algorithm from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn dijkstra(graph: &WalkGraph, source: LocationId) -> ShortestPaths {
    let n = graph.node_count();
    assert!(source.index() < n, "{source} out of range for graph");
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source.index(),
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        for (nb, len) in graph.neighbors(LocationId::from_index(node)) {
            let nd = d + len;
            if nd < dist[nb.index()] {
                dist[nb.index()] = nd;
                prev[nb.index()] = Some(node);
                heap.push(HeapEntry {
                    dist: nd,
                    node: nb.index(),
                });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// All-pairs walkable distances; `None` entries are unreachable pairs.
///
/// Runs Dijkstra from every node — fine for the grid sizes of this
/// reproduction (tens of nodes).
pub fn all_pairs(graph: &WalkGraph) -> Vec<Vec<Option<f64>>> {
    (0..graph.node_count())
        .map(|i| {
            let sp = dijkstra(graph, LocationId::from_index(i));
            (0..graph.node_count())
                .map(|j| sp.distance(LocationId::from_index(j)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{FloorPlan, Wall};
    use crate::grid::ReferenceGrid;
    use crate::polygon::Aabb;
    use crate::vec2::Vec2;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    /// 3×2 grid, spacing 2 m, partition between columns 1 and 2 except a
    /// gap handled by removing only the top edge.
    fn blocked_world() -> WalkGraph {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 3.0), 3, 2, 2.0, 2.0).unwrap();
        let mut plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(8.0, 5.0)).unwrap());
        // Wall blocking only the top aisle between columns 0 and 1.
        plan.add_wall(Wall::partition(
            Vec2::new(2.0, 2.0),
            Vec2::new(2.0, 5.0),
            5.0,
        ));
        WalkGraph::from_grid(&grid, &plan)
    }

    #[test]
    fn direct_neighbors_have_edge_distance() {
        let g = blocked_world();
        let sp = dijkstra(&g, l(1));
        assert!((sp.distance(l(4)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detour_around_partition() {
        let g = blocked_world();
        // 1 → 2 straight is blocked; must go 1-4-5-2 (6 m) instead of 2 m.
        assert!(!g.are_adjacent(l(1), l(2)));
        let sp = dijkstra(&g, l(1));
        assert!((sp.distance(l(2)).unwrap() - 6.0).abs() < 1e-12);
        assert_eq!(sp.path(l(2)).unwrap(), vec![l(1), l(4), l(5), l(2)]);
    }

    #[test]
    fn source_distance_is_zero() {
        let g = blocked_world();
        let sp = dijkstra(&g, l(3));
        assert_eq!(sp.distance(l(3)), Some(0.0));
        assert_eq!(sp.path(l(3)).unwrap(), vec![l(3)]);
        assert_eq!(sp.source(), l(3));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = WalkGraph::with_nodes(3);
        g.add_edge(l(1), l(2), 1.0);
        let sp = dijkstra(&g, l(1));
        assert_eq!(sp.distance(l(3)), None);
        assert_eq!(sp.path(l(3)), None);
    }

    #[test]
    fn all_pairs_is_symmetric_and_satisfies_triangle_inequality() {
        let g = blocked_world();
        let d = all_pairs(&g);
        let n = g.node_count();
        for i in 0..n {
            assert_eq!(d[i][i], Some(0.0));
            for j in 0..n {
                assert_eq!(d[i][j], d[j][i]);
                for k in 0..n {
                    if let (Some(ij), Some(ik), Some(kj)) = (d[i][j], d[i][k], d[k][j]) {
                        assert!(ij <= ik + kj + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn path_endpoints_are_correct() {
        let g = blocked_world();
        let sp = dijkstra(&g, l(1));
        for target in 1..=6 {
            let t = l(target);
            if let Some(p) = sp.path(t) {
                assert_eq!(*p.first().unwrap(), l(1));
                assert_eq!(*p.last().unwrap(), t);
                // Each consecutive pair adjacent.
                for w in p.windows(2) {
                    assert!(g.are_adjacent(w[0], w[1]));
                }
            }
        }
    }
}
