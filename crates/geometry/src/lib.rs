//! 2-D geometry and floor-plan substrate for the MoLoc reproduction.
//!
//! MoLoc's evaluation happens in a physical office hall; this crate is the
//! simulated counterpart:
//!
//! * [`vec2`] — points/vectors and compass bearings between them.
//! * [`segment`] — line segments with robust intersection tests (walls
//!   crossing walking paths and radio paths).
//! * [`polygon`] — simple polygons for furniture/obstacle footprints.
//! * [`floorplan`] — a floor plan with attenuating walls and impassable
//!   obstacles.
//! * [`grid`] — the reference-location grid (the paper's 28 circles of
//!   Fig. 5) and the [`grid::LocationId`] newtype used across the stack.
//! * [`graph`] — the walkable-path graph between adjacent reference
//!   locations.
//! * [`shortest_path`] — Dijkstra walkable distances, the ground truth
//!   against which crowdsourced offsets are sanity-checked.
//!
//! # Examples
//!
//! ```
//! use moloc_geometry::vec2::Vec2;
//!
//! let a = Vec2::new(0.0, 0.0);
//! let b = Vec2::new(0.0, 5.0);
//! // North is bearing 0°.
//! assert!((a.bearing_deg_to(b) - 0.0).abs() < 1e-9);
//! assert!((a.dist(b) - 5.0).abs() < 1e-12);
//! ```

pub mod floorplan;
pub mod graph;
pub mod grid;
pub mod polygon;
pub mod segment;
pub mod shortest_path;
pub mod vec2;

pub use floorplan::{FloorPlan, Wall};
pub use graph::WalkGraph;
pub use grid::{LocationId, ReferenceGrid};
pub use segment::Segment;
pub use vec2::Vec2;
