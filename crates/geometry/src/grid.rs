//! Reference-location grids and the [`LocationId`] newtype.
//!
//! The paper's testbed (Fig. 5) profiles 28 reference locations laid out
//! on a 7-column × 4-row grid in a 40.8 m × 16 m office hall, numbered
//! 1–28 row-major with row 1 at the top. [`ReferenceGrid`] reproduces
//! that layout (parametrically, so tests can build smaller worlds) and
//! is the shared coordinate authority for every other crate.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// Identifier of a reference location, 1-based as in the paper's Fig. 5.
///
/// # Examples
///
/// ```
/// use moloc_geometry::grid::LocationId;
///
/// let id = LocationId::new(7);
/// assert_eq!(id.get(), 7);
/// assert_eq!(id.to_string(), "L7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(u32);

impl LocationId {
    /// Creates an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero: ids are 1-based to match the paper.
    pub fn new(id: u32) -> Self {
        assert!(id > 0, "LocationId is 1-based");
        Self(id)
    }

    /// The raw 1-based id.
    pub fn get(&self) -> u32 {
        self.0
    }

    /// The 0-based index into dense per-location arrays.
    pub fn index(&self) -> usize {
        (self.0 - 1) as usize
    }

    /// Builds an id from a 0-based dense index.
    pub fn from_index(index: usize) -> Self {
        Self::new(index as u32 + 1)
    }
}

impl std::fmt::Display for LocationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A rectangular grid of reference locations.
///
/// Ids increase row-major: id 1 is `(row 0, col 0)` at `origin`, id 2 is
/// `(row 0, col 1)` at `origin + (dx, 0)`, and row `r` sits at
/// `origin.y - r·dy` so row 0 is the **top** row as in Fig. 5.
///
/// # Examples
///
/// ```
/// use moloc_geometry::grid::{LocationId, ReferenceGrid};
/// use moloc_geometry::Vec2;
///
/// let grid = ReferenceGrid::new(Vec2::new(3.0, 14.0), 7, 4, 5.8, 4.0)?;
/// assert_eq!(grid.len(), 28);
/// assert_eq!(grid.position(LocationId::new(1)), Vec2::new(3.0, 14.0));
/// # Ok::<(), moloc_geometry::grid::InvalidGridError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceGrid {
    origin: Vec2,
    cols: u32,
    rows: u32,
    dx: f64,
    dy: f64,
}

/// Error constructing a [`ReferenceGrid`] with no cells or non-positive
/// spacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGridError;

impl std::fmt::Display for InvalidGridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grid needs at least one row and column and positive spacing"
        )
    }
}

impl std::error::Error for InvalidGridError {}

impl ReferenceGrid {
    /// Creates a grid with `cols × rows` locations spaced `dx` × `dy`
    /// meters, `origin` being the position of id 1 (top-left).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGridError`] for empty grids or non-positive
    /// spacing.
    pub fn new(
        origin: Vec2,
        cols: u32,
        rows: u32,
        dx: f64,
        dy: f64,
    ) -> Result<Self, InvalidGridError> {
        if cols == 0 || rows == 0 || dx <= 0.0 || dy <= 0.0 {
            return Err(InvalidGridError);
        }
        Ok(Self {
            origin,
            cols,
            rows,
            dx,
            dy,
        })
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Column spacing in meters.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Row spacing in meters.
    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Total number of reference locations.
    pub fn len(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` belongs to this grid.
    pub fn contains(&self, id: LocationId) -> bool {
        (id.get() as usize) <= self.len()
    }

    /// The `(row, col)` of an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn row_col(&self, id: LocationId) -> (u32, u32) {
        assert!(self.contains(id), "{id} out of range for grid");
        let idx = id.index() as u32;
        (idx / self.cols, idx % self.cols)
    }

    /// The id at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn id_at(&self, row: u32, col: u32) -> LocationId {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        LocationId::new(row * self.cols + col + 1)
    }

    /// The position of a reference location.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: LocationId) -> Vec2 {
        let (row, col) = self.row_col(id);
        Vec2::new(
            self.origin.x + col as f64 * self.dx,
            self.origin.y - row as f64 * self.dy,
        )
    }

    /// Iterates over all ids in increasing order.
    pub fn ids(&self) -> impl Iterator<Item = LocationId> {
        (1..=self.len() as u32).map(LocationId::new)
    }

    /// The id of the reference location nearest to `p` (ties broken by
    /// lower id). A NaN distance — a NaN coordinate in `p` — ranks
    /// *above* every real distance, so it can never win the argmin; an
    /// all-NaN query deterministically falls back to the lowest id
    /// instead of panicking the old `partial_cmp(...).expect(...)`
    /// comparator.
    pub fn nearest(&self, p: Vec2) -> LocationId {
        self.ids()
            .min_by(|&a, &b| {
                let (da, db) = (self.position(a).dist(p), self.position(b).dist(p));
                match (da.is_nan(), db.is_nan()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Greater,
                    (false, true) => std::cmp::Ordering::Less,
                    (false, false) => da.total_cmp(&db),
                }
            })
            .expect("grid is non-empty")
    }

    /// Euclidean (straight-line) distance between two reference
    /// locations.
    pub fn distance(&self, a: LocationId, b: LocationId) -> f64 {
        self.position(a).dist(self.position(b))
    }

    /// Compass bearing from `a` to `b`, `None` when `a == b`.
    pub fn bearing_deg(&self, a: LocationId, b: LocationId) -> Option<f64> {
        self.position(a).bearing_deg_to_checked(self.position(b))
    }

    /// The 4-neighborhood (up/down/left/right) of `id` within the grid.
    pub fn neighbors4(&self, id: LocationId) -> Vec<LocationId> {
        let (row, col) = self.row_col(id);
        let mut out = Vec::with_capacity(4);
        if row > 0 {
            out.push(self.id_at(row - 1, col));
        }
        if row + 1 < self.rows {
            out.push(self.id_at(row + 1, col));
        }
        if col > 0 {
            out.push(self.id_at(row, col - 1));
        }
        if col + 1 < self.cols {
            out.push(self.id_at(row, col + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_grid() -> ReferenceGrid {
        ReferenceGrid::new(Vec2::new(3.0, 14.0), 7, 4, 5.8, 4.0).unwrap()
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn location_id_zero_panics() {
        let _ = LocationId::new(0);
    }

    #[test]
    fn id_index_round_trip() {
        for raw in 1..100 {
            let id = LocationId::new(raw);
            assert_eq!(LocationId::from_index(id.index()), id);
        }
    }

    #[test]
    fn grid_rejects_degenerate() {
        assert!(ReferenceGrid::new(Vec2::ZERO, 0, 4, 1.0, 1.0).is_err());
        assert!(ReferenceGrid::new(Vec2::ZERO, 4, 4, 0.0, 1.0).is_err());
        assert!(ReferenceGrid::new(Vec2::ZERO, 4, 4, 1.0, -1.0).is_err());
    }

    #[test]
    fn paper_layout_has_28_locations() {
        let g = paper_grid();
        assert_eq!(g.len(), 28);
        assert_eq!(g.ids().count(), 28);
    }

    #[test]
    fn row_major_numbering_matches_fig5() {
        let g = paper_grid();
        // Fig. 5: row 1 holds ids 1–7, row 2 holds 8–14, etc.
        assert_eq!(g.row_col(LocationId::new(1)), (0, 0));
        assert_eq!(g.row_col(LocationId::new(7)), (0, 6));
        assert_eq!(g.row_col(LocationId::new(8)), (1, 0));
        assert_eq!(g.row_col(LocationId::new(15)), (2, 0));
        assert_eq!(g.row_col(LocationId::new(28)), (3, 6));
        assert_eq!(g.id_at(2, 0), LocationId::new(15));
    }

    #[test]
    fn top_row_has_highest_y() {
        let g = paper_grid();
        let top = g.position(LocationId::new(1));
        let bottom = g.position(LocationId::new(22));
        assert!(top.y > bottom.y);
        assert_eq!(top.x, bottom.x);
        assert!((top.y - bottom.y - 12.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_recovers_each_location() {
        let g = paper_grid();
        for id in g.ids() {
            let p = g.position(id) + Vec2::new(0.3, -0.2);
            assert_eq!(g.nearest(p), id);
        }
    }

    #[test]
    fn distance_and_bearing() {
        let g = paper_grid();
        // 1 → 2 is one column east.
        assert!((g.distance(LocationId::new(1), LocationId::new(2)) - 5.8).abs() < 1e-12);
        assert!(
            (g.bearing_deg(LocationId::new(1), LocationId::new(2))
                .unwrap()
                - 90.0)
                .abs()
                < 1e-9
        );
        // 1 → 8 is one row south.
        assert!(
            (g.bearing_deg(LocationId::new(1), LocationId::new(8))
                .unwrap()
                - 180.0)
                .abs()
                < 1e-9
        );
        assert_eq!(g.bearing_deg(LocationId::new(3), LocationId::new(3)), None);
    }

    #[test]
    fn neighbors4_at_corner_edge_center() {
        let g = paper_grid();
        assert_eq!(g.neighbors4(LocationId::new(1)).len(), 2); // corner
        assert_eq!(g.neighbors4(LocationId::new(4)).len(), 3); // top edge
        assert_eq!(g.neighbors4(LocationId::new(10)).len(), 4); // interior
        let n = g.neighbors4(LocationId::new(10));
        assert!(n.contains(&LocationId::new(3)));
        assert!(n.contains(&LocationId::new(17)));
        assert!(n.contains(&LocationId::new(9)));
        assert!(n.contains(&LocationId::new(11)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_of_foreign_id_panics() {
        let g = paper_grid();
        let _ = g.position(LocationId::new(29));
    }

    #[test]
    fn nearest_with_nan_coordinates_does_not_panic() {
        let g = paper_grid();
        // Every distance to a NaN point is NaN; the argmin must fall
        // back to the deterministic lowest-id pick, not panic.
        assert_eq!(g.nearest(Vec2::new(f64::NAN, f64::NAN)), LocationId::new(1));
        assert_eq!(g.nearest(Vec2::new(f64::NAN, 0.0)), LocationId::new(1));
        // A NaN never shadows a real nearest answer when distances mix
        // (cannot happen from a single query point, but the comparator
        // contract must hold for any future caller).
        let p = g.position(LocationId::new(5));
        assert_eq!(g.nearest(p), LocationId::new(5));
    }
}
