//! Property-based tests for the geometry substrate.

use moloc_geometry::floorplan::FloorPlan;
use moloc_geometry::grid::{LocationId, ReferenceGrid};
use moloc_geometry::polygon::Aabb;
use moloc_geometry::segment::Segment;
use moloc_geometry::shortest_path::{all_pairs, dijkstra};
use moloc_geometry::vec2::Vec2;
use moloc_geometry::WalkGraph;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn point() -> impl Strategy<Value = Vec2> {
    (coord(), coord()).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #[test]
    fn bearing_walk_round_trip(p in point(), bearing in 0.0..360.0f64, dist in 0.01..50.0f64) {
        let q = p.walk(bearing, dist);
        prop_assert!((p.dist(q) - dist).abs() < 1e-9);
        let back = p.bearing_deg_to(q);
        prop_assert!(
            moloc_stats::circular::abs_diff_deg(back, bearing) < 1e-6,
            "bearing {bearing} vs recovered {back}"
        );
    }

    #[test]
    fn distance_is_a_metric(a in point(), b in point(), c in point()) {
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        prop_assert!(a.dist(a) < 1e-12);
    }

    #[test]
    fn segment_intersection_is_symmetric(a in point(), b in point(), c in point(), d in point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        prop_assert_eq!(s.intersects(&t), t.intersects(&s));
    }

    #[test]
    fn segment_intersects_itself_and_shares_endpoints(a in point(), b in point(), c in point()) {
        let s = Segment::new(a, b);
        prop_assert!(s.intersects(&s));
        // A segment sharing endpoint `b` intersects.
        let t = Segment::new(b, c);
        prop_assert!(s.intersects(&t));
    }

    #[test]
    fn intersection_point_lies_on_both_segments(a in point(), b in point(), c in point(), d in point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        if let Some(p) = s.intersection_point(&t) {
            prop_assert!(s.distance_to_point(p) < 1e-6);
            prop_assert!(t.distance_to_point(p) < 1e-6);
        }
    }

    #[test]
    fn grid_nearest_of_cell_center_is_the_cell(
        cols in 1u32..8, rows in 1u32..6,
        dx in 1.0..10.0f64, dy in 1.0..10.0f64,
        idx in 0usize..48,
    ) {
        let grid = ReferenceGrid::new(Vec2::new(5.0, 50.0), cols, rows, dx, dy).unwrap();
        let id = LocationId::from_index(idx % grid.len());
        prop_assert_eq!(grid.nearest(grid.position(id)), id);
    }

    #[test]
    fn grid_row_col_round_trip(
        cols in 1u32..8, rows in 1u32..6,
        idx in 0usize..48,
    ) {
        let grid = ReferenceGrid::new(Vec2::ZERO, cols, rows, 2.0, 2.0).unwrap();
        let id = LocationId::from_index(idx % grid.len());
        let (r, c) = grid.row_col(id);
        prop_assert_eq!(grid.id_at(r, c), id);
    }

    #[test]
    fn open_plan_walkability_is_symmetric(a in point(), b in point()) {
        let plan = FloorPlan::new(
            Aabb::new(Vec2::new(-150.0, -150.0), Vec2::new(150.0, 150.0)).unwrap(),
        );
        prop_assert_eq!(plan.is_walkable(a, b), plan.is_walkable(b, a));
        prop_assert!((plan.attenuation_db(a, b) - plan.attenuation_db(b, a)).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_distances_satisfy_metric_axioms(
        cols in 2u32..6, rows in 2u32..5,
        seed_edges in prop::collection::vec((0usize..30, 0usize..30), 0..10),
    ) {
        // Grid graph plus a few random extra edges.
        let grid = ReferenceGrid::new(Vec2::new(1.0, 50.0), cols, rows, 3.0, 3.0).unwrap();
        let plan = FloorPlan::new(
            Aabb::new(Vec2::ZERO, Vec2::new(200.0, 200.0)).unwrap(),
        );
        let mut graph = WalkGraph::from_grid(&grid, &plan);
        let n = graph.node_count();
        for (a, b) in seed_edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                let ia = LocationId::from_index(a);
                let ib = LocationId::from_index(b);
                graph.add_edge(ia, ib, grid.distance(ia, ib).max(0.1));
            }
        }
        let d = all_pairs(&graph);
        for i in 0..n {
            prop_assert_eq!(d[i][i], Some(0.0));
            for j in 0..n {
                // Symmetric up to summation order (different Dijkstra
                // sources add the same edge weights in different order).
                match (d[i][j], d[j][i]) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                    (x, y) => prop_assert_eq!(x, y),
                }
                if let (Some(dij), Some(dj)) = (d[i][j], d[j][0]) {
                    if let Some(di) = d[i][0] {
                        prop_assert!(di <= dij + dj + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn dijkstra_path_length_matches_distance(
        cols in 2u32..6, rows in 2u32..5, target in 0usize..30,
    ) {
        let grid = ReferenceGrid::new(Vec2::new(1.0, 50.0), cols, rows, 3.0, 3.0).unwrap();
        let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(200.0, 200.0)).unwrap());
        let graph = WalkGraph::from_grid(&grid, &plan);
        let sp = dijkstra(&graph, LocationId::new(1));
        let t = LocationId::from_index(target % graph.node_count());
        if let (Some(dist), Some(path)) = (sp.distance(t), sp.path(t)) {
            let walked: f64 = path
                .windows(2)
                .map(|w| graph.edge_length(w[0], w[1]).unwrap())
                .sum();
            prop_assert!((walked - dist).abs() < 1e-9);
        }
    }
}
