#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Crash-safe streaming session layer for the MoLoc serving stack.
//!
//! The batch pipeline assumes a clean, complete, ordered trace. Real
//! serving gets per-user events off a network: reordered, duplicated,
//! lossy — and the process hosting a session can die at any moment.
//! This crate closes that gap:
//!
//! * [`event`] — [`event::ScanEvent`], the streamed query unit
//!   (sequence number for ordering, event id for dedup).
//! * [`reorder`] — [`reorder::ReorderBuffer`], bounded
//!   watermark-ordered delivery: out-of-order arrivals parked,
//!   duplicates and late arrivals dropped and counted, gaps declared
//!   lost when the window would otherwise grow without bound.
//! * [`checkpoint`] — versioned, FNV-checksummed tracker checkpoints
//!   on an append-only log with atomic-rename compaction; recovery
//!   classifies torn, truncated, and bit-flipped records and **never
//!   silently accepts** a corrupt one.
//! * [`session`] — [`session::StreamingSession`], the per-user loop:
//!   reorder buffer → `BatchLocalizer` recursion → periodic
//!   checkpoints. Recovery restores the last verified checkpoint and
//!   replays the arrival stream from its cursor, producing estimates
//!   **bit-identical** to the uninterrupted run (proof sketch in
//!   DESIGN.md §16; enforced by the kill-matrix tests).
//! * [`manager`] — [`manager::SessionManager`], bounded admission
//!   with load-shedding to fingerprint-only mode and a stall
//!   watchdog.

pub mod checkpoint;
pub mod event;
pub mod manager;
pub mod reorder;
pub mod session;

pub use checkpoint::{
    CheckpointError, CheckpointLog, CheckpointState, CorruptionKind, RecoveryReport,
};
pub use event::ScanEvent;
pub use manager::{AdmissionMode, ManagerConfig, SessionManager};
pub use reorder::{ReorderBuffer, ReorderStats};
pub use session::{Estimate, Recovered, SessionConfig, StreamingSession};

use moloc_core::error::MolocError;

/// A streaming-session failure.
#[derive(Debug)]
pub enum SessionError {
    /// The checkpoint log could not be read or written.
    Io(std::io::Error),
    /// A checkpoint could not be serialized or persisted (a state that
    /// exceeds the record format's limits, or an append that failed).
    Checkpoint(CheckpointError),
    /// The tracker rejected a query (or a session-layer configuration
    /// contract was violated).
    Track(MolocError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "checkpoint log I/O failed: {e}"),
            SessionError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            SessionError::Track(e) => write!(f, "tracking failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Io(e) => Some(e),
            SessionError::Checkpoint(e) => Some(e),
            SessionError::Track(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

impl From<MolocError> for SessionError {
    fn from(e: MolocError) -> Self {
        SessionError::Track(e)
    }
}

/// Strictly validates every `MOLOC_*` knob this crate reads
/// (`MOLOC_REORDER_CAPACITY`, `MOLOC_CHECKPOINT_INTERVAL`,
/// `MOLOC_CHECKPOINT_FSYNC`). Entry-point binaries call this at
/// startup so a typo'd knob is a typed, actionable error instead of a
/// silently ignored setting.
///
/// # Errors
///
/// Returns [`MolocError::InvalidConfig`] naming the first malformed
/// variable and echoing its raw value.
pub fn validate_env() -> Result<(), MolocError> {
    SessionConfig::from_env().map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_error_displays_both_arms() {
        let io = SessionError::from(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "torn",
        ));
        assert!(io.to_string().contains("I/O"));
        let track = SessionError::from(MolocError::BadMeasurement);
        assert!(track.to_string().contains("finite"));
        let checkpoint = SessionError::from(CheckpointError::TooLarge {
            field: "pending",
            len: usize::MAX,
        });
        assert!(checkpoint.to_string().contains("pending"));
    }
}
