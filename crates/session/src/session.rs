//! The streaming session: reorder buffer → tracker → checkpoint log.
//!
//! A [`StreamingSession`] is the per-user serving loop. Arrivals pass
//! through a [`ReorderBuffer`]; everything the buffer releases drives
//! the `BatchLocalizer` recursion exactly as the batch pipeline would,
//! and every `checkpoint_interval` deliveries the complete state —
//! posterior, degradation flags, watermark, parked events, cursors —
//! is appended to the [`CheckpointLog`].
//!
//! # Crash recovery
//!
//! [`StreamingSession::recover`] loads the most recent checkpoint that
//! verifies (see [`crate::checkpoint`]) and restores all of it. The
//! caller then re-feeds the arrival stream from
//! [`StreamingSession::ingested`] onward. Because (a) Eq. 7 consumes
//! nothing but the previous posterior, (b) the reorder buffer is a
//! pure function of the arrival sequence, and (c) the checkpoint
//! captures both bit-exactly, the recovered run's estimates are
//! **bit-identical** to the uninterrupted run — enforced by the
//! kill-matrix tests in `crates/eval/tests/session_recovery.rs`.

use std::path::Path;

use moloc_core::batch::BatchLocalizer;
use moloc_core::config::MoLocConfig;
use moloc_core::error::{DegradationFlags, MolocError};
use moloc_fingerprint::index::FingerprintIndex;
use moloc_geometry::LocationId;
use moloc_motion::kernel::MotionKernel;

use crate::checkpoint::{read_log, CheckpointLog, CheckpointState, RecoveryReport};
use crate::event::ScanEvent;
use crate::reorder::{ReorderBuffer, ReorderStats};
use crate::SessionError;

/// Streaming-session knobs, overridable via `MOLOC_CHECKPOINT_*` /
/// `MOLOC_REORDER_CAPACITY` (strictly validated — see
/// [`crate::validate_env`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Out-of-order window size of the reorder buffer.
    pub reorder_capacity: usize,
    /// Deliveries between checkpoint appends.
    pub checkpoint_interval: u64,
    /// Whether checkpoint appends `sync_data` (survive power loss, not
    /// just process death).
    pub fsync: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            reorder_capacity: 32,
            checkpoint_interval: 8,
            fsync: false,
        }
    }
}

impl SessionConfig {
    /// Defaults overridden by `MOLOC_REORDER_CAPACITY`,
    /// `MOLOC_CHECKPOINT_INTERVAL`, and `MOLOC_CHECKPOINT_FSYNC`.
    ///
    /// # Errors
    ///
    /// Returns [`MolocError::InvalidConfig`] (naming the variable and
    /// echoing its raw value) when any knob is set but malformed —
    /// never a silent fallback.
    pub fn from_env() -> Result<SessionConfig, MolocError> {
        let mut config = SessionConfig::default();
        if let Some(v) = read_positive("MOLOC_REORDER_CAPACITY")? {
            config.reorder_capacity = v;
        }
        if let Some(v) = read_positive("MOLOC_CHECKPOINT_INTERVAL")? {
            config.checkpoint_interval = v as u64;
        }
        if let Some(v) = read_toggle("MOLOC_CHECKPOINT_FSYNC")? {
            config.fsync = v;
        }
        Ok(config)
    }
}

fn read_raw(field: &'static str) -> Result<Option<String>, MolocError> {
    match std::env::var(field) {
        Ok(raw) => Ok(Some(raw)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(MolocError::invalid_config_value(
            field,
            raw.to_string_lossy(),
        )),
    }
}

fn read_positive(field: &'static str) -> Result<Option<usize>, MolocError> {
    moloc_core::env::parse_positive_usize(field, read_raw(field)?.as_deref())
}

fn read_toggle(field: &'static str) -> Result<Option<bool>, MolocError> {
    moloc_core::env::parse_toggle(field, read_raw(field)?.as_deref())
}

/// One estimate released by the streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// The sequence number of the query that produced it.
    pub seq: u64,
    /// The location estimate.
    pub location: LocationId,
    /// Which graceful fallbacks fired for this step.
    pub flags: DegradationFlags,
}

/// The per-user streaming serving loop. See the module docs.
#[derive(Debug)]
pub struct StreamingSession<'a> {
    engine: BatchLocalizer<'a>,
    reorder: ReorderBuffer,
    log: Option<CheckpointLog>,
    checkpoint_interval: u64,
    ingested: u64,
    delivered: u64,
    since_checkpoint: u64,
    fingerprint_only: bool,
    epoch: u64,
    ready: Vec<ScanEvent>,
}

/// The result of [`StreamingSession::recover`].
#[derive(Debug)]
pub struct Recovered<'a> {
    /// The session, either resumed from a checkpoint or fresh.
    pub session: StreamingSession<'a>,
    /// What the log scan found — corruption is always reported here.
    pub report: RecoveryReport,
    /// Whether a checkpoint was actually restored (`false` means the
    /// log was empty or nothing in it verified: start from scratch and
    /// replay the whole stream).
    pub resumed: bool,
}

impl<'a> StreamingSession<'a> {
    /// A fresh session over shared databases, without checkpointing.
    pub fn new(
        index: &'a FingerprintIndex,
        kernel: &'a MotionKernel,
        moloc: MoLocConfig,
        config: SessionConfig,
    ) -> StreamingSession<'a> {
        StreamingSession {
            engine: BatchLocalizer::new_with_index(index, kernel, moloc),
            reorder: ReorderBuffer::new(config.reorder_capacity),
            log: None,
            checkpoint_interval: config.checkpoint_interval.max(1),
            ingested: 0,
            delivered: 0,
            since_checkpoint: 0,
            fingerprint_only: false,
            epoch: 0,
            ready: Vec::new(),
        }
    }

    /// A fresh session that appends checkpoints to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Io`] when the log cannot be opened.
    pub fn with_log(
        index: &'a FingerprintIndex,
        kernel: &'a MotionKernel,
        moloc: MoLocConfig,
        config: SessionConfig,
        path: impl AsRef<Path>,
    ) -> Result<StreamingSession<'a>, SessionError> {
        let mut session = Self::new(index, kernel, moloc, config);
        session.log = Some(CheckpointLog::open(path.as_ref(), config.fsync)?);
        Ok(session)
    }

    /// Restores the most recent verified checkpoint from `path` (or a
    /// fresh session when none verifies) and reopens the log for
    /// appending. The caller must then re-feed the arrival stream from
    /// [`StreamingSession::ingested`] onward; the resulting estimates
    /// are bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Io`] when the log cannot be read or
    /// reopened. Corruption inside the log is **not** an error: the
    /// session falls back to the last verified record (or fresh) and
    /// the defect is surfaced in [`Recovered::report`].
    pub fn recover(
        index: &'a FingerprintIndex,
        kernel: &'a MotionKernel,
        moloc: MoLocConfig,
        config: SessionConfig,
        path: impl AsRef<Path>,
    ) -> Result<Recovered<'a>, SessionError> {
        moloc_obs::counter_add("session.recovery.attempts", 1);
        let (state, report) = read_log(path.as_ref())?;
        let mut session = Self::with_log(index, kernel, moloc, config, path)?;
        let resumed = match state {
            Some(state) => {
                session.restore(state);
                moloc_obs::counter_add("session.recovery.resumed", 1);
                true
            }
            None => false,
        };
        if report.corruption.is_some() {
            moloc_obs::counter_add("session.recovery.corrupt_logs", 1);
        }
        Ok(Recovered {
            session,
            report,
            resumed,
        })
    }

    /// Applies a decoded checkpoint to this session.
    pub fn restore(&mut self, state: CheckpointState) {
        self.engine.restore_posterior(&state.posterior, state.flags);
        self.ingested = state.ingested;
        self.delivered = state.delivered;
        self.since_checkpoint = 0;
        self.epoch = state.epoch;
        self.reorder
            .restore(state.watermark, state.pending, state.stats);
    }

    /// Snapshots the complete session state (what a checkpoint would
    /// record right now).
    pub fn state(&self) -> CheckpointState {
        let posterior = self.engine.posterior().to_vec();
        CheckpointState {
            ingested: self.ingested,
            delivered: self.delivered,
            watermark: self.reorder.watermark(),
            epoch: self.epoch,
            stats: self.reorder.stats(),
            has_previous: !posterior.is_empty(),
            flags: self.engine.last_flags(),
            posterior,
            pending: self.reorder.pending().cloned().collect(),
        }
    }

    /// Accepts one arrival, appending any estimates it unlocks to
    /// `out`. Checkpoints automatically every `checkpoint_interval`
    /// deliveries (when a log is attached).
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Track`] for malformed queries (the
    /// tracker's own contract) and [`SessionError::Checkpoint`] when a
    /// due checkpoint append fails.
    pub fn ingest(&mut self, event: ScanEvent, out: &mut Vec<Estimate>) -> Result<(), SessionError> {
        self.ingested += 1;
        moloc_obs::counter_add("session.stream.ingested", 1);
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        self.reorder.push(event, &mut ready);
        let result = self.deliver(&mut ready, out);
        self.ready = ready;
        result?;
        self.maybe_checkpoint()?;
        Ok(())
    }

    /// Declares the stream finished: drains the reorder window,
    /// localizes the tail, and writes a final checkpoint.
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamingSession::ingest`].
    pub fn finish(&mut self, out: &mut Vec<Estimate>) -> Result<(), SessionError> {
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        self.reorder.flush(&mut ready);
        let result = self.deliver(&mut ready, out);
        self.ready = ready;
        result?;
        if self.log.is_some() && self.since_checkpoint > 0 {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Forces a checkpoint append right now.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Checkpoint`] when the append fails, and
    /// [`SessionError::Track`] (`InvalidConfig`) when no log is
    /// attached.
    pub fn checkpoint(&mut self) -> Result<(), SessionError> {
        let state = self.state();
        let log = self
            .log
            .as_mut()
            .ok_or_else(|| SessionError::Track(MolocError::invalid_config("checkpoint_log")))?;
        log.append(&state)?;
        self.since_checkpoint = 0;
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> Result<(), SessionError> {
        if self.log.is_some() && self.since_checkpoint >= self.checkpoint_interval {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn deliver(
        &mut self,
        ready: &mut Vec<ScanEvent>,
        out: &mut Vec<Estimate>,
    ) -> Result<(), SessionError> {
        moloc_obs::counter_add("session.stream.delivered", ready.len() as u64);
        for event in ready.drain(..) {
            let motion = if self.fingerprint_only {
                None
            } else {
                event.motion
            };
            let location = self
                .engine
                .observe_slice(&event.scan, motion)
                .map_err(SessionError::Track)?;
            self.delivered += 1;
            self.since_checkpoint += 1;
            out.push(Estimate {
                seq: event.seq,
                location,
                flags: self.engine.last_flags(),
            });
        }
        Ok(())
    }

    /// Arrival events consumed so far — the replay cursor after
    /// recovery.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Events released to the tracker so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Reorder statistics so far.
    pub fn reorder_stats(&self) -> ReorderStats {
        self.reorder.stats()
    }

    /// The reorder watermark.
    pub fn watermark(&self) -> u64 {
        self.reorder.watermark()
    }

    /// Whether the session is running in degraded fingerprint-only
    /// mode (motion evidence ignored — Eq. 4 without Eq. 7 fusion).
    pub fn fingerprint_only(&self) -> bool {
        self.fingerprint_only
    }

    /// Switches fingerprint-only mode (the load-shedding degraded
    /// mode; see `SessionManager`).
    pub fn set_fingerprint_only(&mut self, on: bool) {
        self.fingerprint_only = on;
    }

    /// The live-update database epoch this session is serving from
    /// (0 when running over a static database).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records the database epoch the caller's snapshot reader is
    /// currently pinned to, so subsequent checkpoints carry it and
    /// recovery can report which snapshot generation produced the
    /// session's estimates.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}
