//! The wire unit of the streaming session layer.
//!
//! A [`ScanEvent`] is one localization query as it arrives off the
//! network: an RSS scan plus the motion measured over the interval
//! since the previous scan, tagged with a per-session sequence number
//! (the ordering key Eq. 7's recursion depends on) and a globally
//! unique delivery id (the dedup key — retransmissions reuse the
//! `event_id` but may arrive any number of times, in any order).

use moloc_core::tracker::MotionMeasurement;

use crate::checkpoint::CheckpointError;

/// One streamed localization query.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanEvent {
    /// Globally unique delivery identifier. Duplicated deliveries of
    /// the same logical event carry the same `event_id`.
    pub event_id: u64,
    /// Position of this event in the session's logical stream,
    /// starting at 0. Eq. 7 consumes events strictly in `seq` order.
    pub seq: u64,
    /// The RSS scan (one value per AP, NaN for unheard APs).
    pub scan: Vec<f64>,
    /// Dead-reckoned motion over the interval ending at this scan.
    /// `None` for the first event of a stream and whenever the inertial
    /// pipeline dropped the interval.
    pub motion: Option<MotionMeasurement>,
}

impl ScanEvent {
    /// Serialized size of this event inside a checkpoint payload.
    pub(crate) fn encoded_len(&self) -> usize {
        // event_id + seq + motion tag + 2 motion f64s + scan len + scan.
        8 + 8 + 1 + 16 + 4 + 8 * self.scan.len()
    }

    /// Appends the event to a checkpoint payload (little-endian,
    /// f64s as raw IEEE-754 bits so replay is bit-identical).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::TooLarge`] when the scan holds more
    /// readings than the format's `u32` length prefix can carry.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), CheckpointError> {
        out.extend_from_slice(&self.event_id.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        match self.motion {
            Some(m) => {
                out.push(1);
                out.extend_from_slice(&m.direction_deg.to_bits().to_le_bytes());
                out.extend_from_slice(&m.offset_m.to_bits().to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&[0u8; 16]);
            }
        }
        let len = u32::try_from(self.scan.len()).map_err(|_| CheckpointError::TooLarge {
            field: "scan",
            len: self.scan.len(),
        })?;
        out.extend_from_slice(&len.to_le_bytes());
        for &v in &self.scan {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Ok(())
    }

    /// Decodes one event from a checkpoint payload, advancing `pos`.
    /// `None` when the payload is too short or structurally invalid —
    /// the caller treats that as checkpoint corruption.
    pub(crate) fn decode_from(bytes: &[u8], pos: &mut usize) -> Option<ScanEvent> {
        let event_id = take_u64(bytes, pos)?;
        let seq = take_u64(bytes, pos)?;
        let tag = *bytes.get(*pos)?;
        *pos += 1;
        let dir = take_u64(bytes, pos)?;
        let off = take_u64(bytes, pos)?;
        let motion = match tag {
            0 => None,
            1 => Some(MotionMeasurement {
                direction_deg: f64::from_bits(dir),
                offset_m: f64::from_bits(off),
            }),
            _ => return None,
        };
        let len = take_u32(bytes, pos)? as usize;
        if bytes.len().saturating_sub(*pos) < 8 * len {
            return None;
        }
        let mut scan = Vec::with_capacity(len);
        for _ in 0..len {
            scan.push(f64::from_bits(take_u64(bytes, pos)?));
        }
        Some(ScanEvent {
            event_id,
            seq,
            scan,
            motion,
        })
    }
}

pub(crate) fn take_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let chunk = bytes.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(chunk.try_into().ok()?))
}

pub(crate) fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let chunk = bytes.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(chunk.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScanEvent {
        ScanEvent {
            event_id: 0xDEAD_BEEF,
            seq: 7,
            scan: vec![-40.5, f64::NAN, -71.25],
            motion: Some(MotionMeasurement {
                direction_deg: 93.5,
                offset_m: 4.25,
            }),
        }
    }

    #[test]
    fn round_trips_bit_identically_including_nan() {
        for event in [
            sample(),
            ScanEvent {
                event_id: 1,
                seq: 0,
                scan: vec![],
                motion: None,
            },
        ] {
            let mut buf = Vec::new();
            event.encode_into(&mut buf).expect("encodes");
            assert_eq!(buf.len(), event.encoded_len());
            let mut pos = 0;
            let back = ScanEvent::decode_from(&buf, &mut pos).expect("decodes");
            assert_eq!(pos, buf.len());
            assert_eq!(back.event_id, event.event_id);
            assert_eq!(back.seq, event.seq);
            assert_eq!(back.motion, event.motion);
            let bits: Vec<u64> = event.scan.iter().map(|v| v.to_bits()).collect();
            let back_bits: Vec<u64> = back.scan.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, back_bits, "NaN payloads must survive verbatim");
        }
    }

    #[test]
    fn truncated_bytes_never_decode() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf).expect("encodes");
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                ScanEvent::decode_from(&buf[..cut], &mut pos).is_none(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bad_motion_tag_is_rejected() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf).expect("encodes");
        buf[16] = 2; // motion tag is neither 0 nor 1
        let mut pos = 0;
        assert!(ScanEvent::decode_from(&buf, &mut pos).is_none());
    }
}
