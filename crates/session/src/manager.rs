//! Bounded session admission with load-shedding and a stall watchdog.
//!
//! The serving tier cannot run an unbounded number of full-fusion
//! sessions: each holds a retained posterior, a reorder window, and a
//! motion-kernel working set. The [`SessionManager`] therefore admits
//! at most `max_full_sessions` sessions at full fidelity; every
//! session past the bound is **shed to fingerprint-only mode**
//! (Eq. 4 without the Eq. 7 motion fusion) instead of queueing
//! unboundedly — degraded answers now beat perfect answers never.
//!
//! A watchdog ([`SessionManager::reap_stalled`]) evicts sessions that
//! have not seen an arrival within the stall timeout, freeing their
//! full-fidelity slots; the next shed session admitted after a reap
//! gets a full slot again. Time is injected (`std::time::Instant`
//! parameters) so tests drive the watchdog deterministically.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use moloc_core::config::MoLocConfig;
use moloc_fingerprint::index::FingerprintIndex;
use moloc_motion::kernel::MotionKernel;

use crate::event::ScanEvent;
use crate::session::{Estimate, SessionConfig, StreamingSession};
use crate::SessionError;

/// Admission-control knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagerConfig {
    /// Sessions served at full fidelity; everything beyond is shed.
    pub max_full_sessions: usize,
    /// Idle time after which the watchdog evicts a session.
    pub stall_timeout: Duration,
    /// Per-session streaming configuration.
    pub session: SessionConfig,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            max_full_sessions: 1024,
            stall_timeout: Duration::from_secs(300),
            session: SessionConfig::default(),
        }
    }
}

/// How a session was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Full fusion: fingerprint matching + motion matching (Eq. 7).
    Full,
    /// Load-shed: fingerprint-only (Eq. 4), motion evidence dropped.
    FingerprintOnly,
}

#[derive(Debug)]
struct Slot<'a> {
    session: StreamingSession<'a>,
    mode: AdmissionMode,
    last_activity: Instant,
}

/// The multi-user session frontend. See the module docs.
#[derive(Debug)]
pub struct SessionManager<'a> {
    index: &'a FingerprintIndex,
    kernel: &'a MotionKernel,
    moloc: MoLocConfig,
    config: ManagerConfig,
    sessions: BTreeMap<u64, Slot<'a>>,
    full_active: usize,
}

impl<'a> SessionManager<'a> {
    /// A manager serving sessions over shared databases.
    pub fn new(
        index: &'a FingerprintIndex,
        kernel: &'a MotionKernel,
        moloc: MoLocConfig,
        config: ManagerConfig,
    ) -> SessionManager<'a> {
        SessionManager {
            index,
            kernel,
            moloc,
            config,
            sessions: BTreeMap::new(),
            full_active: 0,
        }
    }

    /// Routes one arrival to `user`'s session, admitting it first if
    /// new. Estimates unlocked by the arrival are appended to `out`;
    /// the session's admission mode is returned.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`SessionError`] (the arrival still
    /// counts as activity, so one malformed query does not stall the
    /// session into the watchdog's jaws).
    pub fn ingest(
        &mut self,
        user: u64,
        event: ScanEvent,
        now: Instant,
        out: &mut Vec<Estimate>,
    ) -> Result<AdmissionMode, SessionError> {
        if !self.sessions.contains_key(&user) {
            self.admit(user, now);
        }
        let slot = self.sessions.get_mut(&user).expect("admitted above");
        slot.last_activity = now;
        slot.session.ingest(event, out)?;
        Ok(slot.mode)
    }

    fn admit(&mut self, user: u64, now: Instant) {
        let mode = if self.full_active < self.config.max_full_sessions {
            self.full_active += 1;
            moloc_obs::counter_add("session.admission.accepted", 1);
            AdmissionMode::Full
        } else {
            moloc_obs::counter_add("session.admission.shed", 1);
            AdmissionMode::FingerprintOnly
        };
        let mut session =
            StreamingSession::new(self.index, self.kernel, self.moloc, self.config.session);
        session.set_fingerprint_only(mode == AdmissionMode::FingerprintOnly);
        self.sessions.insert(
            user,
            Slot {
                session,
                mode,
                last_activity: now,
            },
        );
        moloc_obs::gauge_set("session.manager.active", self.sessions.len() as u64);
    }

    /// Finishes and removes `user`'s session, draining its reorder
    /// tail into `out`. `Ok(false)` when the user has no session.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`SessionError`] from the tail drain
    /// (the session is removed either way).
    pub fn finish(&mut self, user: u64, out: &mut Vec<Estimate>) -> Result<bool, SessionError> {
        match self.sessions.remove(&user) {
            None => Ok(false),
            Some(mut slot) => {
                if slot.mode == AdmissionMode::Full {
                    self.full_active -= 1;
                }
                moloc_obs::gauge_set("session.manager.active", self.sessions.len() as u64);
                slot.session.finish(out)?;
                Ok(true)
            }
        }
    }

    /// Evicts every session idle longer than the stall timeout,
    /// returning the evicted user ids in ascending order. Freed
    /// full-fidelity slots become available to future admissions.
    pub fn reap_stalled(&mut self, now: Instant) -> Vec<u64> {
        let timeout = self.config.stall_timeout;
        let stalled: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, slot)| now.duration_since(slot.last_activity) > timeout)
            .map(|(&user, _)| user)
            .collect();
        for &user in &stalled {
            if let Some(slot) = self.sessions.remove(&user) {
                if slot.mode == AdmissionMode::Full {
                    self.full_active -= 1;
                }
            }
        }
        if !stalled.is_empty() {
            moloc_obs::counter_add("session.watchdog.reaped", stalled.len() as u64);
            moloc_obs::gauge_set("session.manager.active", self.sessions.len() as u64);
        }
        stalled
    }

    /// Active session count.
    pub fn active(&self) -> usize {
        self.sessions.len()
    }

    /// Active full-fidelity session count.
    pub fn full_active(&self) -> usize {
        self.full_active
    }

    /// The admission mode of `user`'s session, if one is active.
    pub fn mode_of(&self, user: u64) -> Option<AdmissionMode> {
        self.sessions.get(&user).map(|slot| slot.mode)
    }
}
