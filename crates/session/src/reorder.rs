//! Watermark-ordered reorder buffering for disordered event streams.
//!
//! The MoLoc recursion (Eq. 7) consumes queries strictly in sequence
//! order — feeding it a transposed pair silently corrupts the retained
//! posterior. Real streams arrive reordered, duplicated, and lossy, so
//! every event passes through a [`ReorderBuffer`] first:
//!
//! * Events are released **contiguously from the watermark** (the next
//!   expected sequence number). An out-of-order arrival parks in a
//!   bounded pending window until its predecessors show up.
//! * **Duplicates** (an arrival whose `seq` is already pending) are
//!   dropped. Since retransmissions reuse the event id — and the
//!   session stream keys event ids to sequence numbers — seq-keyed
//!   dedup *is* event-id dedup; the stored original always wins so
//!   delivery is independent of how many copies arrive.
//! * **Late arrivals** (`seq` below the watermark) are dropped and
//!   counted: their slot was already delivered or declared lost.
//! * When the pending window exceeds its capacity the buffer declares
//!   the smallest missing gap **lost**, advances the watermark to the
//!   earliest pending event, and releases what is now contiguous.
//!   Memory stays bounded no matter how adversarial the stream is.
//!
//! Every decision is a pure function of the arrival order, so a replay
//! of the same arrival stream reproduces the same delivery stream —
//! the property the crash-recovery proof in DESIGN.md §16 leans on.

use std::collections::BTreeMap;

use crate::event::ScanEvent;

/// Counters describing everything a [`ReorderBuffer`] did to a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Events released to the tracker, in sequence order.
    pub delivered: u64,
    /// Arrivals dropped because their sequence slot was already
    /// pending (retransmissions / fault-injected duplicates).
    pub duplicates_dropped: u64,
    /// Arrivals dropped because their sequence number was below the
    /// watermark (the slot was already delivered or declared lost).
    pub late_dropped: u64,
    /// Sequence numbers declared lost to keep the window bounded.
    pub gaps_skipped: u64,
}

/// A bounded, watermark-ordered reorder buffer. See the module docs
/// for the delivery policy.
#[derive(Debug)]
pub struct ReorderBuffer {
    capacity: usize,
    next_seq: u64,
    pending: BTreeMap<u64, ScanEvent>,
    stats: ReorderStats,
}

impl ReorderBuffer {
    /// A buffer that parks at most `capacity` out-of-order events
    /// (`capacity >= 1`).
    pub fn new(capacity: usize) -> ReorderBuffer {
        assert!(capacity >= 1, "reorder capacity must be at least 1");
        ReorderBuffer {
            capacity,
            next_seq: 0,
            pending: BTreeMap::new(),
            stats: ReorderStats::default(),
        }
    }

    /// The next sequence number the buffer will release. Everything
    /// below it has been delivered or declared lost.
    pub fn watermark(&self) -> u64 {
        self.next_seq
    }

    /// Stream statistics so far.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// Out-of-order events currently parked, in sequence order.
    pub fn pending(&self) -> impl Iterator<Item = &ScanEvent> {
        self.pending.values()
    }

    /// Number of parked events.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accepts one arrival and appends every event that is now
    /// releasable (in sequence order) to `out`. Returns how many
    /// events were released.
    pub fn push(&mut self, event: ScanEvent, out: &mut Vec<ScanEvent>) -> usize {
        if event.seq < self.next_seq {
            self.stats.late_dropped += 1;
            return 0;
        }
        if self.pending.contains_key(&event.seq) {
            self.stats.duplicates_dropped += 1;
            return 0;
        }
        self.pending.insert(event.seq, event);
        let before = out.len();
        let watermark_before = self.next_seq;
        self.release_contiguous(out);
        while self.pending.len() > self.capacity {
            self.skip_to_earliest_pending(out);
        }
        moloc_verify::check_watermark("session.reorder.watermark", watermark_before, self.next_seq);
        out.len() - before
    }

    /// Declares the stream finished: releases every parked event in
    /// sequence order, counting the gaps between them as lost.
    pub fn flush(&mut self, out: &mut Vec<ScanEvent>) -> usize {
        let before = out.len();
        while !self.pending.is_empty() {
            self.skip_to_earliest_pending(out);
        }
        out.len() - before
    }

    /// Restores buffer state from a checkpoint: the watermark, the
    /// parked events (must all have `seq >= watermark`), and the
    /// running statistics.
    pub fn restore(&mut self, watermark: u64, pending: Vec<ScanEvent>, stats: ReorderStats) {
        self.next_seq = watermark;
        self.stats = stats;
        self.pending.clear();
        for event in pending {
            debug_assert!(event.seq >= watermark, "pending event below watermark");
            self.pending.insert(event.seq, event);
        }
    }

    fn release_contiguous(&mut self, out: &mut Vec<ScanEvent>) {
        while let Some(event) = self.pending.remove(&self.next_seq) {
            self.next_seq += 1;
            self.stats.delivered += 1;
            out.push(event);
        }
    }

    fn skip_to_earliest_pending(&mut self, out: &mut Vec<ScanEvent>) {
        if let Some((&earliest, _)) = self.pending.iter().next() {
            debug_assert!(earliest > self.next_seq, "contiguous run not drained");
            self.stats.gaps_skipped += earliest - self.next_seq;
            self.next_seq = earliest;
            self.release_contiguous(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> ScanEvent {
        ScanEvent {
            event_id: 1000 + seq,
            seq,
            scan: vec![-40.0 - seq as f64],
            motion: None,
        }
    }

    fn seqs(events: &[ScanEvent]) -> Vec<u64> {
        events.iter().map(|e| e.seq).collect()
    }

    #[test]
    fn in_order_stream_passes_straight_through() {
        let mut buf = ReorderBuffer::new(4);
        let mut out = Vec::new();
        for seq in 0..10 {
            assert_eq!(buf.push(ev(seq), &mut out), 1);
        }
        assert_eq!(seqs(&out), (0..10).collect::<Vec<_>>());
        assert_eq!(buf.stats().delivered, 10);
        assert_eq!(buf.stats().gaps_skipped, 0);
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn out_of_order_arrivals_are_released_in_sequence_order() {
        let mut buf = ReorderBuffer::new(4);
        let mut out = Vec::new();
        buf.push(ev(2), &mut out);
        buf.push(ev(1), &mut out);
        assert!(out.is_empty(), "nothing releasable before seq 0 arrives");
        assert_eq!(buf.push(ev(0), &mut out), 3);
        assert_eq!(seqs(&out), vec![0, 1, 2]);
        assert_eq!(buf.watermark(), 3);
    }

    #[test]
    fn duplicates_and_late_arrivals_are_dropped_and_counted() {
        let mut buf = ReorderBuffer::new(4);
        let mut out = Vec::new();
        buf.push(ev(1), &mut out);
        buf.push(ev(1), &mut out); // duplicate of a pending event
        buf.push(ev(0), &mut out);
        buf.push(ev(0), &mut out); // late: already delivered
        assert_eq!(seqs(&out), vec![0, 1]);
        let stats = buf.stats();
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(stats.late_dropped, 1);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn window_overflow_declares_the_gap_lost_and_stays_bounded() {
        let mut buf = ReorderBuffer::new(3);
        let mut out = Vec::new();
        // seq 0 never arrives; 1..=3 fill the window, 4 overflows it.
        for seq in [1, 2, 3] {
            buf.push(ev(seq), &mut out);
            assert!(out.is_empty());
        }
        buf.push(ev(4), &mut out);
        assert_eq!(seqs(&out), vec![1, 2, 3, 4], "gap skipped, run released");
        assert_eq!(buf.stats().gaps_skipped, 1);
        assert_eq!(buf.watermark(), 5);
        assert!(buf.pending_len() <= buf.capacity());
        // A very late seq 0 is now dropped, not delivered out of order.
        buf.push(ev(0), &mut out);
        assert_eq!(buf.stats().late_dropped, 1);
    }

    #[test]
    fn flush_releases_the_tail_and_counts_interior_gaps() {
        let mut buf = ReorderBuffer::new(8);
        let mut out = Vec::new();
        buf.push(ev(0), &mut out);
        buf.push(ev(2), &mut out);
        buf.push(ev(5), &mut out);
        assert_eq!(buf.flush(&mut out), 2);
        assert_eq!(seqs(&out), vec![0, 2, 5]);
        // Gaps: seq 1 and seqs 3..=4.
        assert_eq!(buf.stats().gaps_skipped, 3);
        assert_eq!(buf.watermark(), 6);
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn replaying_the_same_arrival_order_reproduces_the_delivery_stream() {
        let arrivals = [3u64, 0, 7, 1, 1, 2, 9, 5, 4, 0, 8, 6];
        let run = |capacity| {
            let mut buf = ReorderBuffer::new(capacity);
            let mut out = Vec::new();
            for &seq in &arrivals {
                buf.push(ev(seq), &mut out);
            }
            buf.flush(&mut out);
            (seqs(&out), buf.stats())
        };
        assert_eq!(run(4), run(4));
        // With a roomy window nothing is lost and delivery is exactly
        // the sorted unique sequence set.
        let (delivered, stats) = run(16);
        assert_eq!(delivered, (0..10).collect::<Vec<_>>());
        assert_eq!(stats.gaps_skipped, 0);
        // Both repeats (seq 1, seq 0) arrive after their slot was
        // already delivered, so they count as late, not pending-dups.
        assert_eq!(stats.duplicates_dropped, 0);
        assert_eq!(stats.late_dropped, 2);
    }

    #[test]
    fn restore_resumes_exactly_where_the_checkpoint_left_off() {
        let mut original = ReorderBuffer::new(8);
        let mut out = Vec::new();
        for seq in [0u64, 1, 4, 5] {
            original.push(ev(seq), &mut out);
        }
        let pending: Vec<ScanEvent> = original.pending().cloned().collect();
        let mut restored = ReorderBuffer::new(8);
        restored.restore(original.watermark(), pending, original.stats());

        let mut a = Vec::new();
        let mut b = Vec::new();
        for seq in [3u64, 2] {
            original.push(ev(seq), &mut a);
            restored.push(ev(seq), &mut b);
        }
        assert_eq!(seqs(&a), seqs(&b));
        assert_eq!(original.stats(), restored.stats());
        assert_eq!(original.watermark(), restored.watermark());
    }
}
