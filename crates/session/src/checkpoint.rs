//! Versioned, checksummed tracker checkpoints on an append-only log.
//!
//! # Record format (DESIGN.md §16)
//!
//! Every record is self-framing and self-verifying:
//!
//! ```text
//! +------+---------+-------------+------------+-------------+
//! | MLCK | version | payload_len |  payload   |  checksum   |
//! | 4 B  | u32 LE  |   u64 LE    | len bytes  |   u64 LE    |
//! +------+---------+-------------+------------+-------------+
//! ```
//!
//! The checksum is FNV-1a over everything before it (magic, version,
//! length, payload) — the same hash family as the determinism digest,
//! so a single bit flip anywhere in the record is detected. Records
//! are appended; the log is never rewritten in place. Compaction
//! writes the surviving record to a temporary file and atomically
//! renames it over the log, so a crash mid-compaction leaves either
//! the old log or the new one, never a hybrid.
//!
//! # Recovery contract
//!
//! [`read_log`] scans records front to back and stops at the first
//! byte that fails verification: a torn tail (truncated header or
//! payload), a flipped bit (checksum mismatch), a foreign file (bad
//! magic), or a future version. What was rejected is *classified and
//! reported*, never silently accepted — the session resumes from the
//! last record that verified end to end.
//!
//! # Payload
//!
//! The payload is the complete [`CheckpointState`]: ingest/delivery
//! cursors, the reorder watermark and statistics, the live-update
//! database epoch the session was serving from, the tracker's
//! retained posterior (location ids plus raw IEEE-754 probability
//! bits), its degradation flags, and the parked out-of-order events.
//! Restoring it and replaying the arrival stream from the `ingested`
//! cursor is bit-identical to never having crashed (proof sketch in
//! DESIGN.md §16; enforced by the kill-matrix tests).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use moloc_core::error::DegradationFlags;
use moloc_geometry::LocationId;

use crate::event::{take_u32, take_u64, ScanEvent};
use crate::reorder::ReorderStats;

/// Leading bytes of every checkpoint record.
pub const MAGIC: [u8; 4] = *b"MLCK";
/// Current record format version. Version 2 added the database epoch
/// (the live-update snapshot generation the session was serving from)
/// between the watermark and the reorder statistics.
pub const VERSION: u32 = 2;

const HEADER_LEN: usize = 4 + 4 + 8;
const CHECKSUM_LEN: usize = 8;
/// Upper bound on a single payload — anything larger is corruption,
/// not a checkpoint (guards recovery against allocating a bogus
/// multi-gigabyte length from a torn header).
const MAX_PAYLOAD: u64 = 64 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a record (and everything after it) was rejected during
/// recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Fewer bytes than a record header at the end of the log (torn
    /// header write).
    TruncatedHeader,
    /// The header promises more payload bytes than the file holds
    /// (torn payload write), or a length beyond the sanity bound.
    TruncatedPayload,
    /// The record does not start with `MLCK`.
    BadMagic,
    /// A version this build does not understand.
    BadVersion,
    /// The FNV-1a checksum does not match the record bytes (bit rot /
    /// targeted flip).
    ChecksumMismatch,
    /// Framing verified but the payload does not decode to a
    /// [`CheckpointState`] (e.g. a checksum-colliding mutation).
    Undecodable,
}

impl std::fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CorruptionKind::TruncatedHeader => "truncated-header",
            CorruptionKind::TruncatedPayload => "truncated-payload",
            CorruptionKind::BadMagic => "bad-magic",
            CorruptionKind::BadVersion => "bad-version",
            CorruptionKind::ChecksumMismatch => "checksum-mismatch",
            CorruptionKind::Undecodable => "undecodable-payload",
        };
        write!(f, "{name}")
    }
}

/// A checkpoint could not be serialized or persisted.
#[derive(Debug)]
pub enum CheckpointError {
    /// A variable-length field holds more entries than the record
    /// format's `u32` length prefix can carry. A format limit, not an
    /// I/O failure — previously this panicked inside `encode`.
    TooLarge {
        /// Which field overflowed (`"posterior"`, `"pending"`,
        /// `"scan"`).
        field: &'static str,
        /// The offending length.
        len: usize,
    },
    /// The underlying log I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooLarge { field, len } => {
                write!(f, "checkpoint field `{field}` has {len} entries, exceeding the u32 record format limit")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint log I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::TooLarge { .. } => None,
            CheckpointError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// What recovery found while scanning a checkpoint log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records that verified end to end (framing + checksum).
    pub valid_records: usize,
    /// Bytes covered by the valid prefix.
    pub valid_bytes: u64,
    /// The defect that terminated the scan, if any. Corruption is
    /// always surfaced here — never silently skipped.
    pub corruption: Option<CorruptionKind>,
    /// Valid-framing records whose payload nevertheless failed to
    /// decode (skipped in favor of an earlier record).
    pub undecodable_records: usize,
}

/// The complete streaming-session state captured by one checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Arrival events consumed from the stream so far. Replay resumes
    /// from this cursor.
    pub ingested: u64,
    /// Events released to the tracker so far.
    pub delivered: u64,
    /// The reorder buffer's watermark.
    pub watermark: u64,
    /// The live-update database epoch the session was serving from
    /// (0 for sessions running over a static database). Recovery
    /// restores it so the resumed session reports — and the operator
    /// can audit — which snapshot generation produced its estimates.
    pub epoch: u64,
    /// Reorder statistics at checkpoint time.
    pub stats: ReorderStats,
    /// Whether the tracker held a retained posterior.
    pub has_previous: bool,
    /// The tracker's degradation flags from its last estimate.
    pub flags: DegradationFlags,
    /// The retained posterior, exactly as `BatchLocalizer::posterior`
    /// returned it (empty when `has_previous` is false).
    pub posterior: Vec<(LocationId, f64)>,
    /// Out-of-order events parked in the reorder window.
    pub pending: Vec<ScanEvent>,
}

impl CheckpointState {
    /// Serializes the state into a record payload (little-endian,
    /// probabilities as raw IEEE-754 bits).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::TooLarge`] when a variable-length
    /// field exceeds the format's `u32` length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut out = Vec::with_capacity(
            8 * 4
                + 8 * 4
                + 2
                + 4
                + 12 * self.posterior.len()
                + 4
                + self
                    .pending
                    .iter()
                    .map(ScanEvent::encoded_len)
                    .sum::<usize>(),
        );
        out.extend_from_slice(&self.ingested.to_le_bytes());
        out.extend_from_slice(&self.delivered.to_le_bytes());
        out.extend_from_slice(&self.watermark.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.stats.delivered.to_le_bytes());
        out.extend_from_slice(&self.stats.duplicates_dropped.to_le_bytes());
        out.extend_from_slice(&self.stats.late_dropped.to_le_bytes());
        out.extend_from_slice(&self.stats.gaps_skipped.to_le_bytes());
        out.push(u8::from(self.has_previous));
        out.push(self.flags.bits());
        let plen = u32::try_from(self.posterior.len()).map_err(|_| CheckpointError::TooLarge {
            field: "posterior",
            len: self.posterior.len(),
        })?;
        out.extend_from_slice(&plen.to_le_bytes());
        for &(id, p) in &self.posterior {
            out.extend_from_slice(&id.get().to_le_bytes());
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        let elen = u32::try_from(self.pending.len()).map_err(|_| CheckpointError::TooLarge {
            field: "pending",
            len: self.pending.len(),
        })?;
        out.extend_from_slice(&elen.to_le_bytes());
        for event in &self.pending {
            event.encode_into(&mut out)?;
        }
        Ok(out)
    }

    /// Deserializes a record payload. `None` on any structural
    /// violation (short buffer, zero location id, trailing garbage) —
    /// recovery treats that as [`CorruptionKind::Undecodable`].
    pub fn decode(bytes: &[u8]) -> Option<CheckpointState> {
        let mut pos = 0;
        let ingested = take_u64(bytes, &mut pos)?;
        let delivered = take_u64(bytes, &mut pos)?;
        let watermark = take_u64(bytes, &mut pos)?;
        let epoch = take_u64(bytes, &mut pos)?;
        let stats = ReorderStats {
            delivered: take_u64(bytes, &mut pos)?,
            duplicates_dropped: take_u64(bytes, &mut pos)?,
            late_dropped: take_u64(bytes, &mut pos)?,
            gaps_skipped: take_u64(bytes, &mut pos)?,
        };
        let has_previous = match *bytes.get(pos)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        pos += 1;
        let flags = DegradationFlags::from_bits(*bytes.get(pos)?);
        pos += 1;
        let plen = take_u32(bytes, &mut pos)? as usize;
        if bytes.len().saturating_sub(pos) < 12 * plen {
            return None;
        }
        // Clamp the preallocation like the `pending` path below: `plen`
        // is a corruption-controlled u32, and although the length guard
        // above bounds it by the record size today, the allocation must
        // not depend on that coupling staying intact.
        let mut posterior = Vec::with_capacity(plen.min(1024));
        for _ in 0..plen {
            let raw = take_u32(bytes, &mut pos)?;
            if raw == 0 {
                return None; // LocationId is 1-based; 0 is corruption.
            }
            let p = f64::from_bits(take_u64(bytes, &mut pos)?);
            posterior.push((LocationId::new(raw), p));
        }
        if has_previous == posterior.is_empty() {
            return None;
        }
        let elen = take_u32(bytes, &mut pos)? as usize;
        let mut pending = Vec::with_capacity(elen.min(1024));
        for _ in 0..elen {
            let event = ScanEvent::decode_from(bytes, &mut pos)?;
            if event.seq < watermark {
                return None; // parked events are always ahead of the watermark.
            }
            pending.push(event);
        }
        if pos != bytes.len() {
            return None; // trailing garbage inside a framed payload.
        }
        Some(CheckpointState {
            ingested,
            delivered,
            watermark,
            epoch,
            stats,
            has_previous,
            flags,
            posterior,
            pending,
        })
    }
}

/// Frames a payload into a complete record (header + checksum).
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    record.extend_from_slice(&MAGIC);
    record.extend_from_slice(&VERSION.to_le_bytes());
    record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    record.extend_from_slice(payload);
    let checksum = fnv1a(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Scans a record stream front to back, returning every payload that
/// verified and a report describing where (and why) the scan stopped.
pub fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, RecoveryReport) {
    let mut payloads = Vec::new();
    let mut report = RecoveryReport::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < HEADER_LEN {
            report.corruption = Some(CorruptionKind::TruncatedHeader);
            break;
        }
        if rest[..4] != MAGIC {
            report.corruption = Some(CorruptionKind::BadMagic);
            break;
        }
        let version = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            report.corruption = Some(CorruptionKind::BadVersion);
            break;
        }
        let payload_len = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        if payload_len > MAX_PAYLOAD {
            report.corruption = Some(CorruptionKind::TruncatedPayload);
            break;
        }
        let payload_len = payload_len as usize;
        let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
        if rest.len() < total {
            report.corruption = Some(CorruptionKind::TruncatedPayload);
            break;
        }
        let body = &rest[..HEADER_LEN + payload_len];
        let stored = u64::from_le_bytes(
            rest[HEADER_LEN + payload_len..total]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv1a(body) != stored {
            report.corruption = Some(CorruptionKind::ChecksumMismatch);
            break;
        }
        payloads.push(body[HEADER_LEN..].to_vec());
        pos += total;
        report.valid_records += 1;
        report.valid_bytes = pos as u64;
    }
    (payloads, report)
}

/// Reads a checkpoint log and returns the most recent state that both
/// verified and decoded, plus the scan report. `Ok((None, report))`
/// when the log exists but holds no usable record; missing files are
/// an empty log.
///
/// # Errors
///
/// Returns the underlying I/O error when the log cannot be read.
pub fn read_log(path: &Path) -> std::io::Result<(Option<CheckpointState>, RecoveryReport)> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let (payloads, mut report) = scan_records(&bytes);
    // Most recent first: a verified-but-undecodable payload falls back
    // to the previous record rather than aborting recovery.
    for payload in payloads.iter().rev() {
        match CheckpointState::decode(payload) {
            Some(state) => return Ok((Some(state), report)),
            None => {
                report.undecodable_records += 1;
                report.corruption.get_or_insert(CorruptionKind::Undecodable);
            }
        }
    }
    Ok((None, report))
}

/// An append-only checkpoint log bound to one session.
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    file: File,
    fsync: bool,
    records_written: u64,
    bytes_written: u64,
}

impl CheckpointLog {
    /// Opens (creating if absent) the log at `path` for appending.
    /// With `fsync`, every append is followed by `sync_data` so the
    /// record survives power loss, not just process death.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// opened.
    pub fn open(path: impl Into<PathBuf>, fsync: bool) -> std::io::Result<CheckpointLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(CheckpointLog {
            path,
            file,
            fsync,
            records_written: 0,
            bytes_written: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Appends one checkpoint record.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::TooLarge`] when the state cannot be
    /// serialized, and [`CheckpointError::Io`] when the write (or
    /// fsync) fails; the log may then hold a torn record, which
    /// recovery detects and skips.
    pub fn append(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        let record = frame_record(&state.encode()?);
        self.file.write_all(&record)?;
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.records_written += 1;
        self.bytes_written += record.len() as u64;
        moloc_obs::counter_add("session.checkpoint.writes", 1);
        moloc_obs::counter_add("session.checkpoint.bytes", record.len() as u64);
        Ok(())
    }

    /// Rewrites the log to hold only `state`, via a temporary file and
    /// an atomic rename — a crash mid-compaction leaves either the old
    /// log or the new one intact, never a torn hybrid.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::TooLarge`] when the state cannot be
    /// serialized, and [`CheckpointError::Io`] on I/O failure; on
    /// failure the original log is untouched.
    pub fn compact(&mut self, state: &CheckpointState) -> Result<(), CheckpointError> {
        let record = frame_record(&state.encode()?);
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&record)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        moloc_obs::counter_add("session.checkpoint.compactions", 1);
        Ok(())
    }
}

/// Reads a whole file for offline inspection (test/fuzz helper).
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be read.
pub fn read_log_bytes(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_core::tracker::MotionMeasurement;

    fn sample_state() -> CheckpointState {
        CheckpointState {
            ingested: 42,
            delivered: 40,
            watermark: 41,
            epoch: 6,
            stats: ReorderStats {
                delivered: 40,
                duplicates_dropped: 3,
                late_dropped: 1,
                gaps_skipped: 2,
            },
            has_previous: true,
            flags: DegradationFlags::MASKED_QUERY,
            posterior: vec![
                (LocationId::new(3), 0.625),
                (LocationId::new(9), f64::from_bits(0.375f64.to_bits() + 1)),
            ],
            pending: vec![ScanEvent {
                event_id: 77,
                seq: 43,
                scan: vec![-50.0, f64::NAN],
                motion: Some(MotionMeasurement {
                    direction_deg: 180.0,
                    offset_m: 2.5,
                }),
            }],
        }
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let state = sample_state();
        let back =
            CheckpointState::decode(&state.encode().expect("encodes")).expect("decodes");
        assert_eq!(back.ingested, state.ingested);
        assert_eq!(back.watermark, state.watermark);
        assert_eq!(back.epoch, state.epoch);
        assert_eq!(back.stats, state.stats);
        assert_eq!(back.flags, state.flags);
        let bits =
            |p: &[(LocationId, f64)]| p.iter().map(|&(l, v)| (l, v.to_bits())).collect::<Vec<_>>();
        assert_eq!(bits(&back.posterior), bits(&state.posterior));
        assert_eq!(back.pending.len(), 1);
        assert_eq!(back.pending[0].seq, 43);
    }

    #[test]
    fn framing_round_trips_and_reports_clean() {
        let state = sample_state();
        let mut log = Vec::new();
        log.extend_from_slice(&frame_record(&state.encode().expect("encodes")));
        log.extend_from_slice(&frame_record(&state.encode().expect("encodes")));
        let (payloads, report) = scan_records(&log);
        assert_eq!(payloads.len(), 2);
        assert_eq!(report.valid_records, 2);
        assert_eq!(report.corruption, None);
        assert_eq!(report.valid_bytes, log.len() as u64);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let record = frame_record(&sample_state().encode().expect("encodes"));
        for byte in 0..record.len() {
            for bit in 0..8 {
                let mut mutated = record.clone();
                mutated[byte] ^= 1 << bit;
                let (payloads, report) = scan_records(&mutated);
                let survived = payloads
                    .first()
                    .is_some_and(|p| CheckpointState::decode(p).is_some());
                assert!(
                    !survived || report.corruption.is_none(),
                    "flip at byte {byte} bit {bit} slipped through"
                );
                // FNV over the full record catches any single flip:
                // either the record is rejected outright or (flip in
                // the checksum field) the checksum no longer matches.
                assert!(
                    report.corruption.is_some(),
                    "flip at byte {byte} bit {bit} not reported"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected_and_prior_records_survive() {
        let state = sample_state();
        let first = frame_record(&state.encode().expect("encodes"));
        let second = frame_record(&state.encode().expect("encodes"));
        let mut log = first.clone();
        log.extend_from_slice(&second);
        for cut in first.len() + 1..log.len() {
            let (payloads, report) = scan_records(&log[..cut]);
            assert_eq!(payloads.len(), 1, "first record survives a torn second");
            assert!(
                matches!(
                    report.corruption,
                    Some(CorruptionKind::TruncatedHeader | CorruptionKind::TruncatedPayload)
                ),
                "cut at {cut}: {:?}",
                report.corruption
            );
        }
    }

    #[test]
    fn foreign_and_future_records_are_classified() {
        let mut foreign = frame_record(&sample_state().encode().expect("encodes"));
        foreign[0] = b'X';
        assert_eq!(
            scan_records(&foreign).1.corruption,
            Some(CorruptionKind::BadMagic)
        );

        let payload = sample_state().encode().expect("encodes");
        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        future.extend_from_slice(&(VERSION + 1).to_le_bytes());
        future.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        future.extend_from_slice(&payload);
        let checksum = fnv1a(&future);
        future.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            scan_records(&future).1.corruption,
            Some(CorruptionKind::BadVersion)
        );
    }

    #[test]
    fn undecodable_payload_falls_back_to_the_previous_record() {
        let good = sample_state();
        let mut log = frame_record(&good.encode().expect("encodes"));
        // A framed record whose payload is garbage: framing verifies,
        // decode fails, recovery must fall back, and the defect must
        // be reported.
        log.extend_from_slice(&frame_record(&[0xAB; 7]));
        let dir = std::env::temp_dir().join("moloc-session-undecodable-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("log.mlck");
        std::fs::write(&path, &log).expect("write log");
        let (state, report) = read_log(&path).expect("read");
        std::fs::remove_file(&path).ok();
        let state = state.expect("previous record recovered");
        assert_eq!(state.ingested, good.ingested);
        assert_eq!(report.undecodable_records, 1);
        assert_eq!(report.corruption, Some(CorruptionKind::Undecodable));
    }

    #[test]
    fn append_then_read_recovers_the_latest_state() {
        let dir = std::env::temp_dir().join("moloc-session-append-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("log.mlck");
        std::fs::remove_file(&path).ok();
        let mut log = CheckpointLog::open(&path, false).expect("open");
        let mut state = sample_state();
        log.append(&state).expect("append 1");
        state.ingested = 100;
        state.delivered = 97;
        log.append(&state).expect("append 2");
        assert_eq!(log.records_written(), 2);
        let (recovered, report) = read_log(&path).expect("read");
        assert_eq!(recovered.expect("state").ingested, 100);
        assert_eq!(report.valid_records, 2);
        assert_eq!(report.corruption, None);

        // Compaction keeps only the latest record, atomically.
        log.compact(&state).expect("compact");
        let (recovered, report) = read_log(&path).expect("read after compact");
        assert_eq!(recovered.expect("state").ingested, 100);
        assert_eq!(report.valid_records, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_error_names_field_and_wraps_io() {
        let too_large = CheckpointError::TooLarge {
            field: "posterior",
            len: usize::MAX,
        };
        let msg = too_large.to_string();
        assert!(msg.contains("posterior"), "message names the field: {msg}");
        assert!(msg.contains("u32"), "message names the limit: {msg}");
        let io: CheckpointError =
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "torn").into();
        assert!(matches!(io, CheckpointError::Io(_)));
        assert!(std::error::Error::source(&io).is_some());
    }
}
