//! Checkpoint corruption fuzzing: every torn, truncated, or
//! bit-flipped log must be *detected and classified*, never silently
//! loaded. This is the corpus CI's `checkpoint-fuzz` leg replays.
//!
//! The corpus is generated deterministically (seeded splitmix64, the
//! workspace fault-injection scheme) so a failure reproduces exactly
//! from the printed seed.

use moloc_core::error::DegradationFlags;
use moloc_core::tracker::MotionMeasurement;
use moloc_faults::rng::{hash, unit};
use moloc_geometry::LocationId;
use moloc_session::checkpoint::{frame_record, read_log, scan_records, CheckpointState};
use moloc_session::reorder::ReorderStats;
use moloc_session::ScanEvent;

const SEED: u64 = 2013;

fn state(i: u64) -> CheckpointState {
    let posterior: Vec<(LocationId, f64)> = (1..=3)
        .map(|j| {
            (
                LocationId::new(j as u32 + i as u32),
                unit(hash(SEED, i, j, 0)),
            )
        })
        .collect();
    CheckpointState {
        ingested: 10 * i + 7,
        delivered: 10 * i + 3,
        watermark: 10 * i + 5,
        epoch: i,
        stats: ReorderStats {
            delivered: 10 * i + 3,
            duplicates_dropped: i,
            late_dropped: i / 2,
            gaps_skipped: 2 * i,
        },
        has_previous: true,
        flags: DegradationFlags::from_bits((i & 0xF) as u8),
        posterior,
        pending: vec![ScanEvent {
            event_id: 100 + i,
            seq: 10 * i + 6,
            scan: vec![-40.0 - i as f64, f64::NAN, -60.0],
            motion: Some(MotionMeasurement {
                direction_deg: 45.0 * i as f64,
                offset_m: 1.5,
            }),
        }],
    }
}

/// Bit-exact state equality: the derived `PartialEq` is useless here
/// because scans legitimately carry NaN (unheard APs), and NaN != NaN.
fn same_state(a: &CheckpointState, b: &CheckpointState) -> bool {
    let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    a.ingested == b.ingested
        && a.delivered == b.delivered
        && a.watermark == b.watermark
        && a.epoch == b.epoch
        && a.stats == b.stats
        && a.has_previous == b.has_previous
        && a.flags == b.flags
        && a.posterior.len() == b.posterior.len()
        && a.posterior
            .iter()
            .zip(&b.posterior)
            .all(|(&(la, pa), &(lb, pb))| la == lb && pa.to_bits() == pb.to_bits())
        && a.pending.len() == b.pending.len()
        && a.pending.iter().zip(&b.pending).all(|(ea, eb)| {
            ea.event_id == eb.event_id
                && ea.seq == eb.seq
                && ea.motion == eb.motion
                && bits(&ea.scan) == bits(&eb.scan)
        })
}

fn build_log(n: u64) -> (Vec<u8>, Vec<CheckpointState>) {
    let states: Vec<CheckpointState> = (0..n).map(state).collect();
    let mut log = Vec::new();
    let mut boundaries = vec![0usize];
    for s in &states {
        log.extend_from_slice(&frame_record(&s.encode().expect("encodes")));
        boundaries.push(log.len());
    }
    (log, states)
}

/// The recovered state after corruption must be one of the states
/// actually written — a mutated record may be rejected, never
/// *mutated-and-accepted*.
fn assert_recovers_only_written_states(bytes: &[u8], states: &[CheckpointState], context: &str) {
    let (payloads, report) = scan_records(bytes);
    let mut recovered = None;
    let mut undecodable = 0;
    for payload in payloads.iter().rev() {
        match CheckpointState::decode(payload) {
            Some(s) => {
                recovered = Some(s);
                break;
            }
            None => undecodable += 1,
        }
    }
    if let Some(s) = &recovered {
        assert!(
            states.iter().any(|orig| same_state(orig, s)),
            "{context}: recovered a state that was never written (silent corruption!)"
        );
    }
    // Anything short of the full clean log must be flagged.
    let clean = report.valid_records == states.len()
        && report.corruption.is_none()
        && undecodable == 0
        && report.valid_bytes == bytes.len() as u64;
    let latest_recovered = match (&recovered, states.last()) {
        (Some(r), Some(last)) => same_state(r, last),
        _ => false,
    };
    if bytes.len()
        != states
            .iter()
            .map(|s| frame_record(&s.encode().expect("encodes")).len())
            .sum::<usize>()
        || !latest_recovered
    {
        assert!(
            !clean,
            "{context}: corrupted log scanned clean without recovering the latest state"
        );
    }
}

#[test]
fn truncation_at_every_byte_is_detected_or_lands_on_a_boundary() {
    let (log, states) = build_log(3);
    let record_lens: Vec<usize> = states
        .iter()
        .map(|s| frame_record(&s.encode().expect("encodes")).len())
        .collect();
    let mut boundaries = vec![0usize];
    for len in &record_lens {
        boundaries.push(boundaries.last().copied().expect("nonempty") + len);
    }
    for cut in 0..log.len() {
        let (payloads, report) = scan_records(&log[..cut]);
        let at_boundary = boundaries.contains(&cut);
        if at_boundary {
            assert_eq!(report.corruption, None, "clean prefix at {cut}");
        } else {
            assert!(
                report.corruption.is_some(),
                "torn tail at {cut} not reported"
            );
        }
        // Whatever survived is a verbatim prefix of what was written.
        for (i, payload) in payloads.iter().enumerate() {
            let decoded = CheckpointState::decode(payload).expect("surviving record decodes");
            assert!(
                same_state(&decoded, &states[i]),
                "cut at {cut}: surviving record {i} mutated"
            );
        }
        assert_recovers_only_written_states(&log[..cut], &states, &format!("cut {cut}"));
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let (log, states) = build_log(2);
    for byte in 0..log.len() {
        for bit in 0..8u8 {
            let mut mutated = log.clone();
            mutated[byte] ^= 1 << bit;
            let (_, report) = scan_records(&mutated);
            assert!(
                report.corruption.is_some() || report.valid_records < states.len(),
                "seed {SEED}: flip at byte {byte} bit {bit} scanned clean"
            );
            assert_recovers_only_written_states(
                &mutated,
                &states,
                &format!("seed {SEED} flip byte {byte} bit {bit}"),
            );
        }
    }
}

#[test]
fn random_multi_byte_corruption_never_silently_loads() {
    let (log, states) = build_log(3);
    for case in 0..500u64 {
        let mut mutated = log.clone();
        let burst = 1 + (hash(SEED, case, 0, 0) % 16) as usize;
        for j in 0..burst {
            let pos = (hash(SEED, case, 1, j as u64) % log.len() as u64) as usize;
            mutated[pos] ^= (hash(SEED, case, 2, j as u64) % 255) as u8 + 1;
        }
        assert_recovers_only_written_states(
            &mutated,
            &states,
            &format!("seed {SEED} burst case {case}"),
        );
    }
}

/// A corrupted posterior length that survives checksumming (an
/// attacker-or-bitrot-controlled u32 re-framed into a valid record)
/// must be rejected by `decode` without a proportional preallocation:
/// `Vec::with_capacity(plen)` on an unclamped `u32::MAX` would ask the
/// allocator for 48 GiB before the first entry read fails.
#[test]
fn huge_checksummed_posterior_length_is_rejected_without_allocation() {
    let payload = state(1).encode().expect("encodes");
    // Payload layout: 8 u64 counters (64 bytes), has_previous (1),
    // flags (1), then the posterior length at offset 66.
    const PLEN_OFFSET: usize = 66;
    let plen = u32::from_le_bytes(payload[PLEN_OFFSET..PLEN_OFFSET + 4].try_into().unwrap());
    assert_eq!(plen, 3, "fixture layout moved; update PLEN_OFFSET");
    for huge in [u32::MAX, u32::MAX / 12, 1 << 24] {
        let mut mutated = payload.clone();
        mutated[PLEN_OFFSET..PLEN_OFFSET + 4].copy_from_slice(&huge.to_le_bytes());
        // Re-frame so the checksum is *valid*: framing-level scans must
        // accept the record and hand the hostile payload to decode.
        let record = frame_record(&mutated);
        let (payloads, report) = scan_records(&record);
        assert_eq!(payloads.len(), 1, "checksummed frame must scan");
        assert_eq!(report.corruption, None);
        assert!(
            CheckpointState::decode(&payloads[0]).is_none(),
            "plen {huge} decoded"
        );
    }
}

#[test]
fn random_garbage_is_rejected_not_decoded() {
    for case in 0..200u64 {
        let len = (hash(SEED, case, 9, 0) % 256) as usize;
        let garbage: Vec<u8> = (0..len)
            .map(|i| (hash(SEED, case, 10, i as u64) & 0xFF) as u8)
            .collect();
        let (payloads, report) = scan_records(&garbage);
        assert!(payloads.is_empty(), "garbage case {case} framed a record");
        if !garbage.is_empty() {
            assert!(
                report.corruption.is_some(),
                "garbage case {case} not reported"
            );
        }
    }
}

#[test]
fn read_log_surfaces_corruption_from_disk() {
    let dir = std::env::temp_dir().join("moloc-session-fuzz-io");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("corrupt.mlck");
    let (log, states) = build_log(2);
    // Torn tail: second record half-written.
    let cut = frame_record(&states[0].encode().expect("encodes")).len() + 11;
    std::fs::write(&path, &log[..cut]).expect("write");
    let (recovered, report) = read_log(&path).expect("read");
    let recovered = recovered.expect("first record survives");
    assert!(same_state(&recovered, &states[0]));
    assert!(report.corruption.is_some());
    std::fs::remove_file(&path).ok();
}
