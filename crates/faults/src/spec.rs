//! Serializable fault-plan specifications.
//!
//! A chaos failure that cannot be reproduced is noise. A
//! [`FaultPlanSpec`] is the declarative form of a fault composition —
//! one optional slot per injector — that round-trips through
//! deterministic JSON (vendored `serde_json` emits fields in
//! declaration order), so any failing chaos test can print the exact
//! plan + seed that broke it and a developer can replay it verbatim:
//!
//! ```
//! use moloc_faults::spec::FaultPlanSpec;
//! use moloc_faults::ApDropout;
//!
//! let spec = FaultPlanSpec {
//!     ap_dropout: Some(ApDropout { rate: 0.3, seed: 7 }),
//!     ..FaultPlanSpec::default()
//! };
//! let json = spec.to_json().unwrap();
//! let back = FaultPlanSpec::from_json(&json).unwrap();
//! assert_eq!(spec, back);
//! ```

use serde::{Deserialize, Serialize};

use crate::ap::{ApDropout, ApOutage, RogueAp, StaleDrift};
use crate::plan::FaultSuite;
use crate::rlm::RlmCorruption;
use crate::sensor::{SensorGap, TimestampJitter};
use crate::stream::{
    CheckpointCorruption, ClockSkew, ScanDuplicate, ScanLoss, ScanReorder, StaleSnapshot,
    WorkerStall,
};

/// A declarative fault composition: one optional slot per injector.
///
/// The content-level slots build a [`FaultSuite`] via
/// [`FaultPlanSpec::build_suite`]; the stream/lifecycle slots
/// (`scan_reorder`, `scan_duplicate`, `scan_loss`,
/// `checkpoint_corruption`, `worker_stall`, `stale_snapshot`) are
/// consumed by the session/runtime/live layers directly, since they
/// act on transport and lifecycle rather than on input contents.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlanSpec {
    /// Per-reading AP dropout.
    pub ap_dropout: Option<ApDropout>,
    /// Hard single-AP outage.
    pub ap_outage: Option<ApOutage>,
    /// Rogue-AP bias and bursts.
    pub rogue_ap: Option<RogueAp>,
    /// Stale-survey fingerprint drift.
    pub stale_drift: Option<StaleDrift>,
    /// Inertial stream gaps.
    pub sensor_gap: Option<SensorGap>,
    /// Sensor timebase jitter.
    pub timestamp_jitter: Option<TimestampJitter>,
    /// Motion-database cell deletion.
    pub rlm_corruption: Option<RlmCorruption>,
    /// Per-trace device clock skew.
    pub clock_skew: Option<ClockSkew>,
    /// Arrival-order permutation.
    pub scan_reorder: Option<ScanReorder>,
    /// Wire-level event duplication.
    pub scan_duplicate: Option<ScanDuplicate>,
    /// Wire-level event loss.
    pub scan_loss: Option<ScanLoss>,
    /// Checkpoint-record bit flips.
    pub checkpoint_corruption: Option<CheckpointCorruption>,
    /// Evaluation-worker stalls.
    pub worker_stall: Option<WorkerStall>,
    /// Stale live-database snapshots held at the reader.
    pub stale_snapshot: Option<StaleSnapshot>,
}

impl FaultPlanSpec {
    /// Builds the content-level [`FaultSuite`] this spec describes, in
    /// the fixed field order (so composition order is part of the
    /// spec's meaning and reproduces exactly).
    pub fn build_suite(&self) -> FaultSuite {
        let mut suite = FaultSuite::new();
        if let Some(p) = self.ap_dropout {
            suite = suite.with(p);
        }
        if let Some(p) = self.ap_outage {
            suite = suite.with(p);
        }
        if let Some(p) = self.rogue_ap {
            suite = suite.with(p);
        }
        if let Some(p) = self.stale_drift {
            suite = suite.with(p);
        }
        if let Some(p) = self.sensor_gap {
            suite = suite.with(p);
        }
        if let Some(p) = self.timestamp_jitter {
            suite = suite.with(p);
        }
        if let Some(p) = self.rlm_corruption {
            suite = suite.with(p);
        }
        if let Some(p) = self.clock_skew {
            suite = suite.with(p);
        }
        suite
    }

    /// Names of the active injectors, in composition order.
    pub fn active(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        if self.ap_dropout.is_some() {
            names.push("ap_dropout");
        }
        if self.ap_outage.is_some() {
            names.push("ap_outage");
        }
        if self.rogue_ap.is_some() {
            names.push("rogue_ap");
        }
        if self.stale_drift.is_some() {
            names.push("stale_drift");
        }
        if self.sensor_gap.is_some() {
            names.push("sensor_gap");
        }
        if self.timestamp_jitter.is_some() {
            names.push("timestamp_jitter");
        }
        if self.rlm_corruption.is_some() {
            names.push("rlm_corruption");
        }
        if self.clock_skew.is_some() {
            names.push("clock_skew");
        }
        if self.scan_reorder.is_some() {
            names.push("scan_reorder");
        }
        if self.scan_duplicate.is_some() {
            names.push("scan_duplicate");
        }
        if self.scan_loss.is_some() {
            names.push("scan_loss");
        }
        if self.checkpoint_corruption.is_some() {
            names.push("checkpoint_corruption");
        }
        if self.worker_stall.is_some() {
            names.push("worker_stall");
        }
        if self.stale_snapshot.is_some() {
            names.push("stale_snapshot");
        }
        names
    }

    /// Serializes to deterministic JSON (field declaration order).
    ///
    /// # Errors
    ///
    /// Propagates the serializer error (practically unreachable for
    /// this plain-data struct).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a spec back from [`FaultPlanSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed or mistyped JSON.
    pub fn from_json(json: &str) -> Result<FaultPlanSpec, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// One-line reproduction banner for chaos-test failures: the
    /// active injector names plus the full JSON spec. Test harnesses
    /// print this before panicking so every red run is replayable.
    pub fn describe(&self) -> String {
        let json = self
            .to_json()
            .unwrap_or_else(|e| format!("<unserializable: {e:?}>"));
        format!("fault plan [{}]:\n{}", self.active().join("+"), json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> FaultPlanSpec {
        FaultPlanSpec {
            ap_dropout: Some(ApDropout { rate: 0.25, seed: 1 }),
            ap_outage: Some(ApOutage { ap: 3 }),
            rogue_ap: Some(RogueAp {
                ap: 1,
                bias_db: 6.0,
                burst_rate: 0.1,
                burst_db: 12.0,
                seed: 2,
            }),
            stale_drift: Some(StaleDrift {
                std_db: 2.0,
                seed: 3,
            }),
            sensor_gap: Some(SensorGap {
                gaps_per_trace: 2,
                gap_s: 1.5,
                seed: 4,
            }),
            timestamp_jitter: Some(TimestampJitter {
                std_s: 0.25,
                seed: 5,
            }),
            rlm_corruption: Some(RlmCorruption {
                fraction: 0.5,
                seed: 6,
            }),
            clock_skew: Some(ClockSkew {
                max_skew_s: 1.0,
                drift_per_s: 0.001,
                seed: 7,
            }),
            scan_reorder: Some(ScanReorder {
                rate: 0.3,
                window: 4,
                seed: 8,
            }),
            scan_duplicate: Some(ScanDuplicate {
                rate: 0.2,
                seed: 9,
            }),
            scan_loss: Some(ScanLoss {
                rate: 0.1,
                seed: 10,
            }),
            checkpoint_corruption: Some(CheckpointCorruption {
                rate: 0.5,
                seed: 11,
            }),
            worker_stall: Some(WorkerStall {
                rate: 0.05,
                stall_ms: 40,
                seed: 12,
            }),
            stale_snapshot: Some(StaleSnapshot {
                rate: 0.15,
                seed: 13,
            }),
        }
    }

    #[test]
    fn full_spec_round_trips_through_json() {
        let spec = full_spec();
        let json = spec.to_json().expect("serializes");
        let back = FaultPlanSpec::from_json(&json).expect("parses");
        assert_eq!(spec, back);
    }

    #[test]
    fn empty_spec_round_trips_and_builds_an_empty_suite() {
        let spec = FaultPlanSpec::default();
        let back = FaultPlanSpec::from_json(&spec.to_json().expect("serializes")).expect("parses");
        assert_eq!(spec, back);
        assert!(spec.build_suite().is_empty());
        assert!(spec.active().is_empty());
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = full_spec().to_json().expect("serializes");
        let b = full_spec().to_json().expect("serializes");
        assert_eq!(a, b);
        // Field order is declaration order, so dropout precedes stall.
        let d = a.find("ap_dropout").expect("present");
        let w = a.find("worker_stall").expect("present");
        assert!(d < w);
    }

    #[test]
    fn build_suite_composes_only_content_level_plans() {
        let spec = full_spec();
        let suite = spec.build_suite();
        // 8 content-level injectors; 6 stream/lifecycle ones are
        // consumed by the session/runtime/live layers instead.
        assert_eq!(suite.len(), 8);
        assert_eq!(spec.active().len(), 14);
    }

    #[test]
    fn describe_names_active_injectors_and_embeds_the_json() {
        let spec = FaultPlanSpec {
            scan_loss: Some(ScanLoss {
                rate: 0.1,
                seed: 10,
            }),
            checkpoint_corruption: Some(CheckpointCorruption {
                rate: 0.5,
                seed: 11,
            }),
            ..FaultPlanSpec::default()
        };
        let banner = spec.describe();
        assert!(banner.contains("scan_loss+checkpoint_corruption"));
        assert!(banner.contains("\"rate\""));
        assert!(FaultPlanSpec::from_json(banner.split_once(":\n").expect("banner").1).is_ok());
    }
}
