//! WiFi-side fault injectors: AP dropout and outage, rogue-AP bias and
//! burst noise, stale-survey drift.

use crate::plan::FaultPlan;
use crate::rng::{hash, std_normal, unit};
use moloc_fingerprint::db::FingerprintDb;
use serde::{Deserialize, Serialize};

/// Independently drops each `(trace, pass, ap)` reading with
/// probability `rate`, writing NaN (the pipeline's "unobserved" value).
/// Models APs intermittently missing from scans — the dominant failure
/// in production fingerprinting deployments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApDropout {
    /// Per-reading dropout probability in `[0, 1]`.
    pub rate: f64,
    /// Injection seed.
    pub seed: u64,
}

impl FaultPlan for ApDropout {
    fn name(&self) -> &'static str {
        "ap_dropout"
    }

    fn apply_scan(&self, trace: u64, pass: u64, scan: &mut [f64]) {
        for (ap, value) in scan.iter_mut().enumerate() {
            // rate 0.0: `u < 0.0` is false for every u — exact no-op.
            if unit(hash(self.seed, trace, pass, ap as u64)) < self.rate {
                *value = f64::NAN;
            }
        }
    }
}

/// A hard outage of one AP: every scan loses that reading. Models a
/// powered-off or decommissioned transmitter after the site survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApOutage {
    /// Index of the dead AP within the scan vector.
    pub ap: usize,
}

impl FaultPlan for ApOutage {
    fn name(&self) -> &'static str {
        "ap_outage"
    }

    fn apply_scan(&self, _trace: u64, _pass: u64, scan: &mut [f64]) {
        if let Some(value) = scan.get_mut(self.ap) {
            *value = f64::NAN;
        }
    }
}

/// A rogue (or re-tuned) AP: a constant RSS bias on one AP plus
/// occasional high-power bursts. Models interference and transmit-power
/// reconfiguration that the survey never saw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RogueAp {
    /// Index of the affected AP.
    pub ap: usize,
    /// Constant bias added to every reading, in dB.
    pub bias_db: f64,
    /// Per-reading probability of an additional burst.
    pub burst_rate: f64,
    /// Burst amplitude in dB (added on top of the bias).
    pub burst_db: f64,
    /// Injection seed.
    pub seed: u64,
}

impl FaultPlan for RogueAp {
    fn name(&self) -> &'static str {
        "rogue_ap"
    }

    fn apply_scan(&self, trace: u64, pass: u64, scan: &mut [f64]) {
        // Zero intensity must be an exact no-op (`x + 0.0` can still
        // flip a -0.0, so don't even touch the value).
        if self.bias_db == 0.0 && (self.burst_rate == 0.0 || self.burst_db == 0.0) {
            return;
        }
        if let Some(value) = scan.get_mut(self.ap) {
            let mut delta = self.bias_db;
            if unit(hash(self.seed, trace, pass, self.ap as u64)) < self.burst_rate {
                delta += self.burst_db;
            }
            *value += delta;
        }
    }
}

/// Stale-survey drift: perturbs every stored fingerprint value with
/// independent Gaussian noise of standard deviation `std_db`. Models a
/// database surveyed long ago while the radio environment moved on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaleDrift {
    /// Per-value drift standard deviation, in dB.
    pub std_db: f64,
    /// Injection seed.
    pub seed: u64,
}

impl FaultPlan for StaleDrift {
    fn name(&self) -> &'static str {
        "stale_drift"
    }

    fn apply_fingerprint_db(&self, db: FingerprintDb) -> FingerprintDb {
        if self.std_db == 0.0 {
            return db;
        }
        let entries = db
            .iter()
            .map(|(id, fp)| {
                let values = fp
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(ap, &v)| {
                        v + self.std_db * std_normal(hash(self.seed, id.get() as u64, ap as u64, 0))
                    })
                    .collect();
                (id, moloc_fingerprint::fingerprint::Fingerprint::new(values))
            })
            .collect();
        FingerprintDb::from_fingerprints(entries)
            .expect("drifting finite values of a valid database keeps it valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_fingerprint::fingerprint::Fingerprint;
    use moloc_geometry::LocationId;

    #[test]
    fn dropout_rate_zero_is_a_no_op() {
        let plan = ApDropout { rate: 0.0, seed: 1 };
        let mut scan = vec![-40.0, -55.0, -60.0];
        let original = scan.clone();
        plan.apply_scan(0, 0, &mut scan);
        assert_eq!(scan, original);
    }

    #[test]
    fn dropout_rate_one_kills_everything() {
        let plan = ApDropout { rate: 1.0, seed: 1 };
        let mut scan = vec![-40.0, -55.0, -60.0];
        plan.apply_scan(3, 5, &mut scan);
        assert!(scan.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn dropout_is_reproducible_and_seed_sensitive() {
        let base = vec![-40.0, -55.0, -60.0, -70.0, -45.0, -50.0];
        let run = |seed: u64| {
            let plan = ApDropout { rate: 0.5, seed };
            let mut scans = Vec::new();
            for trace in 0..4u64 {
                for pass in 0..4u64 {
                    let mut scan = base.clone();
                    plan.apply_scan(trace, pass, &mut scan);
                    scans.push(scan.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
                }
            }
            scans
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn dropout_hits_roughly_rate() {
        let plan = ApDropout {
            rate: 0.3,
            seed: 21,
        };
        let mut dropped = 0usize;
        let total = 2_000 * 6;
        for pass in 0..2_000u64 {
            let mut scan = vec![-50.0; 6];
            plan.apply_scan(0, pass, &mut scan);
            dropped += scan.iter().filter(|v| v.is_nan()).count();
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn outage_kills_exactly_one_ap() {
        let plan = ApOutage { ap: 2 };
        let mut scan = vec![-40.0, -55.0, -60.0, -70.0];
        plan.apply_scan(0, 0, &mut scan);
        assert!(scan[2].is_nan());
        assert_eq!(&scan[..2], &[-40.0, -55.0]);
        assert_eq!(scan[3], -70.0);
        // Out-of-range AP index is ignored.
        let mut short = vec![-40.0];
        ApOutage { ap: 5 }.apply_scan(0, 0, &mut short);
        assert_eq!(short, vec![-40.0]);
    }

    #[test]
    fn rogue_zero_intensity_is_a_no_op() {
        let plan = RogueAp {
            ap: 1,
            bias_db: 0.0,
            burst_rate: 0.0,
            burst_db: 0.0,
            seed: 5,
        };
        let mut scan = vec![-40.0, -55.0];
        plan.apply_scan(0, 0, &mut scan);
        assert_eq!(scan, vec![-40.0, -55.0]);
    }

    #[test]
    fn rogue_applies_bias_and_bursts() {
        let plan = RogueAp {
            ap: 0,
            bias_db: 6.0,
            burst_rate: 0.5,
            burst_db: 10.0,
            seed: 5,
        };
        let mut biased = 0usize;
        let mut burst = 0usize;
        for pass in 0..1_000u64 {
            let mut scan = vec![-50.0, -60.0];
            plan.apply_scan(0, pass, &mut scan);
            assert_eq!(scan[1], -60.0);
            if scan[0] == -44.0 {
                biased += 1;
            } else if scan[0] == -34.0 {
                burst += 1;
            } else {
                panic!("unexpected value {}", scan[0]);
            }
        }
        assert!(biased > 350 && burst > 350, "biased {biased} burst {burst}");
    }

    #[test]
    fn stale_drift_zero_std_returns_identical_db() {
        let db = FingerprintDb::from_fingerprints(vec![
            (LocationId::new(1), Fingerprint::new(vec![-40.0, -70.0])),
            (LocationId::new(2), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap();
        let plan = StaleDrift {
            std_db: 0.0,
            seed: 3,
        };
        assert_eq!(plan.apply_fingerprint_db(db.clone()), db);
    }

    #[test]
    fn stale_drift_perturbs_reproducibly() {
        let db = FingerprintDb::from_fingerprints(vec![
            (LocationId::new(1), Fingerprint::new(vec![-40.0, -70.0])),
            (LocationId::new(2), Fingerprint::new(vec![-70.0, -40.0])),
        ])
        .unwrap();
        let plan = StaleDrift {
            std_db: 4.0,
            seed: 3,
        };
        let a = plan.apply_fingerprint_db(db.clone());
        let b = plan.apply_fingerprint_db(db.clone());
        assert_eq!(a, b);
        assert_ne!(a, db);
        // All values finite and shifted by a few sigma at most.
        for (id, fp) in a.iter() {
            let original = db.fingerprint(id).unwrap();
            for (&drifted, &clean) in fp.values().iter().zip(original.values()) {
                assert!(drifted.is_finite());
                assert!((drifted - clean).abs() < 6.0 * 4.0);
            }
        }
    }
}
