//! Stateless, coordinate-keyed randomness for fault injection.
//!
//! Every injector decision is a pure function of `(seed, coordinates)`
//! through a chained splitmix64 hash: no generator state is threaded
//! through the pipeline, so the decision for scan 7 / AP 2 of trace 3
//! is the same whether traces are faulted serially, in parallel, or in
//! any order — scenarios reproduce byte-for-byte from the seed alone.

/// One splitmix64 step (Steele et al., the standard finalizer).
#[inline]
fn splitmix(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a seed with three event coordinates (e.g. trace, pass, AP)
/// into an independent 64-bit value.
#[inline]
pub fn hash(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix(splitmix(splitmix(splitmix(seed) ^ a) ^ b) ^ c)
}

/// Maps a hash to a uniform sample in `[0, 1)` (53 mantissa bits).
#[inline]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a hash to an approximate standard-normal sample (Irwin–Hall:
/// the sum of 12 uniforms minus 6 has mean 0 and variance 1). Plenty
/// for noise injection; tails clip at ±6 sigma.
#[inline]
pub fn std_normal(h: u64) -> f64 {
    let mut state = h;
    let mut sum = 0.0;
    for _ in 0..12 {
        state = splitmix(state);
        sum += unit(state);
    }
    sum - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_coordinate_sensitive() {
        assert_eq!(hash(1, 2, 3, 4), hash(1, 2, 3, 4));
        assert_ne!(hash(1, 2, 3, 4), hash(2, 2, 3, 4));
        assert_ne!(hash(1, 2, 3, 4), hash(1, 3, 3, 4));
        assert_ne!(hash(1, 2, 3, 4), hash(1, 2, 4, 4));
        assert_ne!(hash(1, 2, 3, 4), hash(1, 2, 3, 5));
        // Coordinate transposition must not collide.
        assert_ne!(hash(1, 2, 3, 4), hash(1, 4, 3, 2));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        for i in 0..10_000u64 {
            let u = unit(hash(42, i, 0, 0));
            assert!((0.0..1.0).contains(&u), "unit {u} out of range");
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| unit(hash(7, i, 0, 0))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn std_normal_has_unit_moments() {
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|i| std_normal(hash(9, i, 0, 0))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
