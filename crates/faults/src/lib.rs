//! Fault-injection harness for the MoLoc reproduction.
//!
//! Real deployments never see the clean inputs the evaluation pipeline
//! synthesizes: APs drop out of scans, rogue transmitters bias RSS,
//! inertial streams stall, the crowdsourced motion database loses
//! cells, and the site survey goes stale. This crate injects those
//! failures deterministically so the degradation layer in
//! `moloc-core`/`moloc-fingerprint` can be exercised and regressed:
//!
//! * [`plan`] — the [`plan::FaultPlan`] trait, per-trace application,
//!   and the composable [`plan::FaultSuite`].
//! * [`rng`] — stateless splitmix64-keyed randomness: every decision is
//!   a pure function of `(seed, event coordinates)`, so scenarios
//!   reproduce byte-for-byte regardless of ordering or parallelism.
//! * [`ap`] — WiFi faults: [`ap::ApDropout`], [`ap::ApOutage`],
//!   [`ap::RogueAp`], and stale-survey [`ap::StaleDrift`].
//! * [`sensor`] — inertial faults: [`sensor::SensorGap`] and
//!   [`sensor::TimestampJitter`].
//! * [`rlm`] — motion-database faults: [`rlm::RlmCorruption`].
//! * [`stream`] — stream/lifecycle faults for the crash-safe session
//!   and live-update layers: [`stream::ScanReorder`],
//!   [`stream::ScanDuplicate`], [`stream::ScanLoss`],
//!   [`stream::ClockSkew`], [`stream::CheckpointCorruption`],
//!   [`stream::WorkerStall`], and [`stream::StaleSnapshot`].
//! * [`spec`] — [`spec::FaultPlanSpec`], the JSON-round-trippable
//!   declarative form of a fault composition, printed by chaos tests
//!   on failure so every red run reproduces from the spec + seed.
//!
//! Every injector is an exact no-op at zero intensity, so a zero-fault
//! plan leaves the pipeline bit-identical to an uninjected run.
//!
//! # Examples
//!
//! ```
//! use moloc_faults::ap::ApDropout;
//! use moloc_faults::plan::{FaultPlan, FaultSuite};
//!
//! let suite = FaultSuite::new().with(ApDropout { rate: 0.25, seed: 7 });
//! let mut scan = vec![-40.0, -55.0, -60.0, -70.0];
//! suite.apply_scan(0, 0, &mut scan);
//! // Dropped readings become NaN; the masked metric ignores them.
//! assert!(scan.iter().any(|v| v.is_finite()));
//! ```

pub mod ap;
pub mod plan;
pub mod rlm;
pub mod rng;
pub mod sensor;
pub mod spec;
pub mod stream;

pub use ap::{ApDropout, ApOutage, RogueAp, StaleDrift};
pub use plan::{apply_to_trace, FaultPlan, FaultSuite};
pub use rlm::RlmCorruption;
pub use sensor::{SensorGap, TimestampJitter};
pub use spec::FaultPlanSpec;
pub use stream::{
    CheckpointCorruption, ClockSkew, ScanDuplicate, ScanLoss, ScanReorder, StaleSnapshot,
    WorkerStall,
};
