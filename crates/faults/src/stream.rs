//! Stream- and lifecycle-fault injectors for the crash-safe session
//! layer.
//!
//! The [`crate::plan::FaultPlan`] hooks corrupt *contents* (scan
//! values, sensor samples, databases). The injectors here corrupt the
//! *transport and lifecycle* around a streaming session: arrival
//! order, duplication, loss, device clocks, the checkpoint log on
//! disk, and the workers driving sessions. They expose per-coordinate
//! decision methods instead of operating on session types directly —
//! the session/eval layers own the event structs and call down here
//! for every decision — which keeps this crate free of a dependency
//! cycle and keeps every decision a pure function of
//! `(seed, coordinates)` on the same splitmix64 scheme as the content
//! injectors. Zero intensity is an exact no-op for all of them.

use std::time::Duration;

use crate::plan::FaultPlan;
use crate::rng::{hash, unit};
use moloc_sensors::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Permutes the arrival order of a session's event stream: each event
/// is independently displaced later by up to `window` positions with
/// probability `rate`. Models network reordering between the device
/// and the serving tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanReorder {
    /// Per-event displacement probability in `[0, 1]`.
    pub rate: f64,
    /// Maximum displacement in stream positions.
    pub window: usize,
    /// Injection seed.
    pub seed: u64,
}

impl ScanReorder {
    /// How far event `i` of `trace` is displaced (0 = undisturbed).
    pub fn displacement(&self, trace: u64, i: u64) -> usize {
        // `u < rate` (not `u >= rate` negated at the call site) so a
        // NaN rate is an exact no-op like every other zero intensity.
        let displaced = unit(hash(self.seed, trace, i, 0)) < self.rate;
        if self.window == 0 || !displaced {
            return 0;
        }
        1 + (hash(self.seed, trace, i, 1) % self.window as u64) as usize
    }

    /// The arrival order of an `n`-event stream: element `k` is the
    /// original index of the `k`-th arrival. Identity at zero
    /// intensity; a permutation of `0..n` always.
    pub fn arrival_order(&self, trace: u64, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        // Stable sort on (original position + displacement): an event
        // displaced by d lands after its next d undisturbed neighbors,
        // ties broken by original order — a deterministic permutation.
        order.sort_by_key(|&i| i + self.displacement(trace, i as u64));
        order
    }
}

/// Duplicates events on the wire: each event is independently
/// retransmitted with probability `rate` (same event id, same
/// sequence number — the reorder buffer must drop the copy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanDuplicate {
    /// Per-event duplication probability in `[0, 1]`.
    pub rate: f64,
    /// Injection seed.
    pub seed: u64,
}

impl ScanDuplicate {
    /// Extra copies of event `i` of `trace` delivered after the
    /// original (0 at zero intensity).
    pub fn extra_copies(&self, trace: u64, i: u64) -> usize {
        usize::from(unit(hash(self.seed, trace, i, 2)) < self.rate)
    }
}

/// Loses events on the wire: each event is independently dropped with
/// probability `rate` and never arrives. The reorder buffer's
/// gap-skip policy (or stream flush) declares the hole lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanLoss {
    /// Per-event loss probability in `[0, 1]`.
    pub rate: f64,
    /// Injection seed.
    pub seed: u64,
}

impl ScanLoss {
    /// Whether event `i` of `trace` is lost in transit.
    pub fn dropped(&self, trace: u64, i: u64) -> bool {
        unit(hash(self.seed, trace, i, 3)) < self.rate
    }
}

/// Skews the device clock of a whole trace: a constant per-trace
/// offset (uniform in `±max_skew_s`) plus linear drift, applied to
/// the sensor streams' timebase. A [`FaultPlan`]: composes with the
/// content injectors in a `FaultSuite`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSkew {
    /// Maximum constant offset magnitude in seconds.
    pub max_skew_s: f64,
    /// Additional drift in seconds per second of stream time.
    pub drift_per_s: f64,
    /// Injection seed.
    pub seed: u64,
}

impl ClockSkew {
    /// The constant clock offset of `trace`, in seconds.
    pub fn offset_s(&self, trace: u64) -> f64 {
        if self.max_skew_s == 0.0 {
            return 0.0;
        }
        (2.0 * unit(hash(self.seed, trace, 0, 4)) - 1.0) * self.max_skew_s
    }

    fn shift(&self, trace: u64, series: &mut TimeSeries) {
        if (self.max_skew_s == 0.0 && self.drift_per_s == 0.0) || series.is_empty() {
            return;
        }
        let rate = series.sample_rate_hz();
        // Constant offset plus drift accumulated to the stream start.
        let t0 = series.t0() + self.offset_s(trace) + self.drift_per_s * series.t0();
        let values: Vec<f64> = series.values().to_vec();
        series
            .assign(t0, rate, values)
            .expect("rate unchanged from a valid series");
    }
}

impl FaultPlan for ClockSkew {
    fn name(&self) -> &'static str {
        "clock_skew"
    }

    fn apply_accel(&self, trace: u64, accel: &mut TimeSeries) {
        self.shift(trace, accel);
    }

    fn apply_compass(&self, trace: u64, compass: &mut TimeSeries) {
        self.shift(trace, compass);
    }
}

/// Corrupts checkpoint records on their way to disk: each record is
/// independently hit with probability `rate`; a hit flips one
/// deterministically chosen bit. Recovery must detect every hit —
/// the checkpoint-fuzz CI leg drives this injector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCorruption {
    /// Per-record corruption probability in `[0, 1]`.
    pub rate: f64,
    /// Injection seed.
    pub seed: u64,
}

impl CheckpointCorruption {
    /// Whether record `record` of session `session` gets hit.
    pub fn hits(&self, session: u64, record: u64) -> bool {
        unit(hash(self.seed, session, record, 5)) < self.rate
    }

    /// Applies the fault to an encoded record, returning `true` when a
    /// bit was flipped. Exact no-op (and `false`) at zero intensity or
    /// on empty buffers.
    pub fn corrupt(&self, session: u64, record: u64, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() || !self.hits(session, record) {
            return false;
        }
        let bit = hash(self.seed, session, record, 6) % (bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        true
    }
}

/// Stalls evaluation workers: each `(job, shard)` is independently
/// stalled for `stall` with probability `rate`. The runtime's
/// watchdog must flag the stall; the deadline must bound it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerStall {
    /// Per-shard stall probability in `[0, 1]`.
    pub rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Injection seed.
    pub seed: u64,
}

impl WorkerStall {
    /// How long shard `shard` of job `job` stalls, if at all.
    pub fn stall(&self, job: u64, shard: u64) -> Option<Duration> {
        if self.stall_ms > 0 && unit(hash(self.seed, job, shard, 7)) < self.rate {
            Some(Duration::from_millis(self.stall_ms))
        } else {
            None
        }
    }
}

/// Pins live localizers to a stale database snapshot: each
/// `(trace, step)` refresh decision is independently held with
/// probability `rate`, so the reader keeps serving its cached epoch
/// while the publisher moves on. Models slow snapshot propagation to
/// the serving tier; drives `SnapshotReader::refresh_unless` /
/// `LiveLocalizer::observe_held` in `moloc-live`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaleSnapshot {
    /// Per-step hold probability in `[0, 1]`.
    pub rate: f64,
    /// Injection seed.
    pub seed: u64,
}

impl StaleSnapshot {
    /// Whether step `step` of `trace` must keep serving its cached
    /// epoch instead of adopting a newly published one.
    pub fn hold(&self, trace: u64, step: u64) -> bool {
        unit(hash(self.seed, trace, step, 8)) < self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_is_an_exact_no_op_everywhere() {
        let reorder = ScanReorder {
            rate: 0.0,
            window: 8,
            seed: 1,
        };
        assert_eq!(reorder.arrival_order(3, 10), (0..10).collect::<Vec<_>>());
        let no_window = ScanReorder {
            rate: 1.0,
            window: 0,
            seed: 1,
        };
        assert_eq!(no_window.arrival_order(3, 10), (0..10).collect::<Vec<_>>());

        let dup = ScanDuplicate { rate: 0.0, seed: 1 };
        let loss = ScanLoss { rate: 0.0, seed: 1 };
        for i in 0..100 {
            assert_eq!(dup.extra_copies(0, i), 0);
            assert!(!loss.dropped(0, i));
        }

        let skew = ClockSkew {
            max_skew_s: 0.0,
            drift_per_s: 0.0,
            seed: 1,
        };
        let original = TimeSeries::new(5.0, 10.0, vec![1.0; 50]).expect("valid series");
        let mut s = original.clone();
        skew.apply_accel(0, &mut s);
        assert_eq!(s, original);

        let corrupt = CheckpointCorruption { rate: 0.0, seed: 1 };
        let mut bytes = vec![0xAAu8; 64];
        assert!(!corrupt.corrupt(0, 0, &mut bytes));
        assert_eq!(bytes, vec![0xAAu8; 64]);

        let stall = WorkerStall {
            rate: 1.0,
            stall_ms: 0,
            seed: 1,
        };
        assert_eq!(stall.stall(0, 0), None);

        let stale = StaleSnapshot { rate: 0.0, seed: 1 };
        for step in 0..100 {
            assert!(!stale.hold(0, step));
        }
    }

    #[test]
    fn stale_snapshot_holds_are_deterministic_and_monotone() {
        let plan = StaleSnapshot {
            rate: 0.4,
            seed: 19,
        };
        let held: Vec<u64> = (0..1000).filter(|&s| plan.hold(2, s)).collect();
        assert!(!held.is_empty() && held.len() < 1000, "partial coverage");
        assert_eq!(
            held,
            (0..1000).filter(|&s| plan.hold(2, s)).collect::<Vec<_>>(),
            "deterministic"
        );
        // Fixed per-coordinate draws: holds at a lower rate are a
        // subset of holds at a higher rate.
        let hi = StaleSnapshot {
            rate: 0.9,
            seed: 19,
        };
        for &s in &held {
            assert!(hi.hold(2, s), "subset property");
        }
        // rate = 1 pins every step.
        let always = StaleSnapshot {
            rate: 1.0,
            seed: 19,
        };
        assert!((0..100).all(|s| always.hold(2, s)));
    }

    #[test]
    fn reorder_always_yields_a_permutation() {
        for (rate, window) in [(0.3, 2), (0.8, 5), (1.0, 20)] {
            let plan = ScanReorder {
                rate,
                window,
                seed: 42,
            };
            for trace in 0..5u64 {
                let mut order = plan.arrival_order(trace, 50);
                assert_eq!(order, plan.arrival_order(trace, 50), "deterministic");
                order.sort_unstable();
                assert_eq!(order, (0..50).collect::<Vec<_>>(), "permutation");
            }
        }
    }

    #[test]
    fn reorder_displacement_is_bounded_by_the_window() {
        let plan = ScanReorder {
            rate: 1.0,
            window: 3,
            seed: 9,
        };
        let order = plan.arrival_order(0, 100);
        for (arrival, &original) in order.iter().enumerate() {
            // An event can arrive at most `window` late and, by
            // displacement of its successors, at most `window` early.
            assert!(
                (arrival as i64 - original as i64).unsigned_abs() <= 3,
                "event {original} arrived at {arrival}"
            );
        }
    }

    #[test]
    fn loss_and_duplication_rates_are_monotone_in_intensity() {
        // Fixed per-coordinate draws: the fault set at a lower rate is
        // a subset of the set at a higher rate.
        let count_lost = |rate: f64| {
            let plan = ScanLoss { rate, seed: 77 };
            (0..1000).filter(|&i| plan.dropped(0, i)).count()
        };
        assert!(count_lost(0.1) <= count_lost(0.3));
        assert!(count_lost(0.3) <= count_lost(0.9));
        let lo = ScanLoss {
            rate: 0.1,
            seed: 77,
        };
        let hi = ScanLoss {
            rate: 0.5,
            seed: 77,
        };
        for i in 0..1000 {
            assert!(!lo.dropped(0, i) || hi.dropped(0, i), "subset property");
        }
    }

    #[test]
    fn checkpoint_corruption_flips_exactly_one_bit() {
        let plan = CheckpointCorruption {
            rate: 1.0,
            seed: 13,
        };
        let original = vec![0x5Au8; 128];
        let mut bytes = original.clone();
        assert!(plan.corrupt(4, 2, &mut bytes));
        let flipped: u32 = bytes
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        // Same coordinates, same bit.
        let mut again = original.clone();
        plan.corrupt(4, 2, &mut again);
        assert_eq!(bytes, again);
    }

    #[test]
    fn clock_skew_moves_timebase_only_and_matches_offset() {
        let plan = ClockSkew {
            max_skew_s: 2.0,
            drift_per_s: 0.0,
            seed: 21,
        };
        let original = TimeSeries::new(10.0, 20.0, (0..40).map(f64::from).collect())
            .expect("valid series");
        let mut accel = original.clone();
        let mut compass = original.clone();
        plan.apply_accel(6, &mut accel);
        plan.apply_compass(6, &mut compass);
        assert_eq!(accel.t0(), 10.0 + plan.offset_s(6));
        assert_eq!(accel.t0(), compass.t0(), "one clock per device");
        assert!(plan.offset_s(6).abs() <= 2.0);
        assert_eq!(accel.values(), original.values());
    }

    #[test]
    fn worker_stall_is_deterministic_per_shard() {
        let plan = WorkerStall {
            rate: 0.5,
            stall_ms: 25,
            seed: 31,
        };
        let stalled: Vec<u64> = (0..100).filter(|&s| plan.stall(3, s).is_some()).collect();
        assert!(!stalled.is_empty() && stalled.len() < 100);
        for &s in &stalled {
            assert_eq!(plan.stall(3, s), Some(Duration::from_millis(25)));
        }
    }
}
