//! The [`FaultPlan`] trait and plan composition.
//!
//! A fault plan is a bundle of deterministic corruptions applied to the
//! pipeline's inputs: per-pass WiFi scans, the accelerometer and compass
//! streams, the surveyed fingerprint database, and the crowdsourced
//! motion database. Injectors implement only the hooks they care about;
//! the defaults are no-ops. All randomness is keyed on
//! `(seed, coordinates)` via [`crate::rng`], so applying a plan is a
//! pure function of the seed and the event's identity — byte-for-byte
//! reproducible regardless of trace order or parallelism.

use moloc_fingerprint::db::FingerprintDb;
use moloc_mobility::render::SensorTrace;
use moloc_motion::matrix::MotionDb;
use moloc_sensors::series::TimeSeries;

/// A composable, seeded fault injector.
///
/// Every hook must be deterministic in its arguments (plus the
/// injector's own seed); implementations draw randomness from
/// [`crate::rng::hash`] keyed on event coordinates, never from ambient
/// state. At zero intensity every hook must be an exact no-op so a
/// zero-fault plan leaves the pipeline bit-identical.
pub trait FaultPlan: std::fmt::Debug + Send + Sync {
    /// Short machine-readable name (for reports and logs).
    fn name(&self) -> &'static str;

    /// Corrupts one WiFi scan of pass `pass` in trace `trace`. Missing
    /// APs are written as NaN — the degradation layer's masked metric
    /// treats non-finite entries as unobserved.
    fn apply_scan(&self, _trace: u64, _pass: u64, _scan: &mut [f64]) {}

    /// Corrupts the accelerometer magnitude stream of `trace`.
    fn apply_accel(&self, _trace: u64, _accel: &mut TimeSeries) {}

    /// Corrupts the compass stream of `trace`.
    fn apply_compass(&self, _trace: u64, _compass: &mut TimeSeries) {}

    /// Corrupts the surveyed fingerprint database (stale-survey drift).
    fn apply_fingerprint_db(&self, db: FingerprintDb) -> FingerprintDb {
        db
    }

    /// Corrupts the motion database (missing/corrupted RLM cells).
    fn apply_motion_db(&self, _db: &mut MotionDb) {}
}

/// Applies a plan to every scan and sensor stream of one trace, keyed
/// by the trace's corpus index.
pub fn apply_to_trace(plan: &dyn FaultPlan, trace_index: u64, trace: &mut SensorTrace) {
    for (pass, scan) in trace.scans.iter_mut().enumerate() {
        plan.apply_scan(trace_index, pass as u64, scan);
    }
    plan.apply_accel(trace_index, &mut trace.accel);
    plan.apply_compass(trace_index, &mut trace.compass);
}

/// An ordered composition of fault plans: each hook delegates to every
/// member in insertion order, so independently seeded faults stack
/// (e.g. AP dropout on top of stale-survey drift).
#[derive(Debug, Default)]
pub struct FaultSuite {
    plans: Vec<Box<dyn FaultPlan>>,
}

impl FaultSuite {
    /// An empty suite (every hook a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a plan to the end of the composition.
    pub fn with(mut self, plan: impl FaultPlan + 'static) -> Self {
        self.plans.push(Box::new(plan));
        self
    }

    /// Number of composed plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the suite holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

impl FaultPlan for FaultSuite {
    fn name(&self) -> &'static str {
        "suite"
    }

    fn apply_scan(&self, trace: u64, pass: u64, scan: &mut [f64]) {
        for plan in &self.plans {
            plan.apply_scan(trace, pass, scan);
        }
    }

    fn apply_accel(&self, trace: u64, accel: &mut TimeSeries) {
        for plan in &self.plans {
            plan.apply_accel(trace, accel);
        }
    }

    fn apply_compass(&self, trace: u64, compass: &mut TimeSeries) {
        for plan in &self.plans {
            plan.apply_compass(trace, compass);
        }
    }

    fn apply_fingerprint_db(&self, db: FingerprintDb) -> FingerprintDb {
        self.plans
            .iter()
            .fold(db, |db, plan| plan.apply_fingerprint_db(db))
    }

    fn apply_motion_db(&self, db: &mut MotionDb) {
        for plan in &self.plans {
            plan.apply_motion_db(db);
        }
    }
}
