//! Inertial-side fault injectors: sample gaps and timestamp jitter.

use crate::plan::FaultPlan;
use crate::rng::{hash, std_normal, unit};
use moloc_sensors::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Punches NaN windows into the accelerometer and compass streams:
/// `gaps_per_trace` gaps of `gap_s` seconds each, placed uniformly over
/// the trace. Both streams lose the same windows (a device-level stall
/// silences every sensor at once). Downstream, gapped intervals fail
/// the walking test or produce no usable compass mean and degrade to
/// fingerprint-only localization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorGap {
    /// Number of gaps punched into each trace.
    pub gaps_per_trace: usize,
    /// Length of each gap in seconds.
    pub gap_s: f64,
    /// Injection seed.
    pub seed: u64,
}

impl SensorGap {
    fn punch(&self, trace: u64, series: &mut TimeSeries) {
        if self.gaps_per_trace == 0 || self.gap_s <= 0.0 || series.is_empty() {
            return;
        }
        let rate = series.sample_rate_hz();
        let t0 = series.t0();
        let gap_samples = ((self.gap_s * rate).round() as usize).max(1);
        let len = series.len();
        let mut values: Vec<f64> = series.values().to_vec();
        for gap in 0..self.gaps_per_trace {
            // The start is drawn per (trace, gap) only, so accel and
            // compass — same trace, same length — lose identical
            // windows.
            let span = len.saturating_sub(gap_samples).max(1);
            let start = (unit(hash(self.seed, trace, gap as u64, 0)) * span as f64) as usize;
            let end = (start + gap_samples).min(len);
            for value in &mut values[start.min(len)..end] {
                *value = f64::NAN;
            }
        }
        series
            .assign(t0, rate, values)
            .expect("rate unchanged from a valid series");
    }
}

impl FaultPlan for SensorGap {
    fn name(&self) -> &'static str {
        "sensor_gap"
    }

    fn apply_accel(&self, trace: u64, accel: &mut TimeSeries) {
        self.punch(trace, accel);
    }

    fn apply_compass(&self, trace: u64, compass: &mut TimeSeries) {
        self.punch(trace, compass);
    }
}

/// Shifts the timebase of both sensor streams by one Gaussian jitter
/// per trace (standard deviation `std_s`). Models clock skew between
/// the WiFi scan timestamps and the inertial pipeline: intervals slice
/// the sensor streams slightly off the true pass boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimestampJitter {
    /// Jitter standard deviation in seconds.
    pub std_s: f64,
    /// Injection seed.
    pub seed: u64,
}

impl TimestampJitter {
    fn shift(&self, trace: u64, series: &mut TimeSeries) {
        if self.std_s == 0.0 || series.is_empty() {
            return;
        }
        // One draw per trace: both streams shift together, as a skewed
        // device clock would move them.
        let jitter = self.std_s * std_normal(hash(self.seed, trace, 0, 0));
        let rate = series.sample_rate_hz();
        let t0 = series.t0() + jitter;
        let values: Vec<f64> = series.values().to_vec();
        series
            .assign(t0, rate, values)
            .expect("rate unchanged from a valid series");
    }
}

impl FaultPlan for TimestampJitter {
    fn name(&self) -> &'static str {
        "timestamp_jitter"
    }

    fn apply_accel(&self, trace: u64, accel: &mut TimeSeries) {
        self.shift(trace, accel);
    }

    fn apply_compass(&self, trace: u64, compass: &mut TimeSeries) {
        self.shift(trace, compass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> TimeSeries {
        TimeSeries::new(0.0, 10.0, (0..n).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn zero_gaps_or_length_is_a_no_op() {
        let original = series(100);
        for plan in [
            SensorGap {
                gaps_per_trace: 0,
                gap_s: 2.0,
                seed: 1,
            },
            SensorGap {
                gaps_per_trace: 3,
                gap_s: 0.0,
                seed: 1,
            },
        ] {
            let mut s = original.clone();
            plan.apply_accel(0, &mut s);
            assert_eq!(s, original);
        }
    }

    #[test]
    fn gaps_punch_expected_sample_counts() {
        let plan = SensorGap {
            gaps_per_trace: 2,
            gap_s: 1.0,
            seed: 7,
        };
        let mut s = series(200);
        plan.apply_accel(4, &mut s);
        let nan = s.values().iter().filter(|v| v.is_nan()).count();
        // Two 10-sample gaps, possibly overlapping.
        assert!((10..=20).contains(&nan), "nan count {nan}");
        assert_eq!(s.len(), 200);
        assert_eq!(s.t0(), 0.0);
    }

    #[test]
    fn accel_and_compass_lose_identical_windows() {
        let plan = SensorGap {
            gaps_per_trace: 2,
            gap_s: 1.5,
            seed: 9,
        };
        let mut accel = series(150);
        let mut compass = series(150);
        plan.apply_accel(2, &mut accel);
        plan.apply_compass(2, &mut compass);
        let mask = |s: &TimeSeries| s.values().iter().map(|v| v.is_nan()).collect::<Vec<_>>();
        assert_eq!(mask(&accel), mask(&compass));
        assert!(mask(&accel).iter().any(|&m| m));
    }

    #[test]
    fn gaps_are_seed_reproducible() {
        let plan = SensorGap {
            gaps_per_trace: 3,
            gap_s: 0.8,
            seed: 11,
        };
        let mut a = series(300);
        let mut b = series(300);
        plan.apply_accel(5, &mut a);
        plan.apply_accel(5, &mut b);
        // Bit-level comparison: NaN != NaN under PartialEq.
        let bits = |s: &TimeSeries| s.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        let other = SensorGap { seed: 12, ..plan };
        let mut c = series(300);
        other.apply_accel(5, &mut c);
        assert_ne!(bits(&a), bits(&c));
    }

    #[test]
    fn jitter_shifts_timebase_only() {
        let plan = TimestampJitter {
            std_s: 0.5,
            seed: 3,
        };
        let original = series(50);
        let mut accel = original.clone();
        let mut compass = original.clone();
        plan.apply_accel(1, &mut accel);
        plan.apply_compass(1, &mut compass);
        assert_ne!(accel.t0(), 0.0);
        assert_eq!(accel.t0(), compass.t0());
        assert_eq!(accel.values(), original.values());
        assert_eq!(accel.sample_rate_hz(), original.sample_rate_hz());

        let mut zero = original.clone();
        TimestampJitter {
            std_s: 0.0,
            seed: 3,
        }
        .apply_accel(1, &mut zero);
        assert_eq!(zero, original);
    }
}
