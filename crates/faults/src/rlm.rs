//! Motion-database fault injectors: corrupted / missing RLM cells.

use crate::plan::FaultPlan;
use crate::rng::{hash, unit};
use moloc_motion::matrix::MotionDb;
use serde::{Deserialize, Serialize};

/// Deletes each trained (undirected) motion-database pair independently
/// with probability `fraction`. Models RLM cells lost to crowdsourcing
/// gaps or corrupted beyond sanitation: lookups of a deleted pair fall
/// back to the kernel's untrained-pair probability, and Eq. 6/7
/// degrades toward the fingerprint-only prior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlmCorruption {
    /// Per-pair deletion probability in `[0, 1]`.
    pub fraction: f64,
    /// Injection seed.
    pub seed: u64,
}

impl FaultPlan for RlmCorruption {
    fn name(&self) -> &'static str {
        "rlm_corruption"
    }

    fn apply_motion_db(&self, db: &mut MotionDb) {
        // Decide on the canonical key, not iteration order, so the
        // outcome is a pure function of (seed, pair).
        let doomed: Vec<_> = db
            .iter()
            .filter(|(i, j, _)| {
                unit(hash(self.seed, i.get() as u64, j.get() as u64, 0)) < self.fraction
            })
            .map(|(i, j, _)| (i, j))
            .collect();
        for (i, j) in doomed {
            db.remove(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moloc_geometry::LocationId;
    use moloc_motion::matrix::PairStats;
    use moloc_stats::gaussian::Gaussian;

    fn l(i: u32) -> LocationId {
        LocationId::new(i)
    }

    fn db(pairs: usize) -> MotionDb {
        let mut db = MotionDb::new(pairs + 1);
        for i in 0..pairs as u32 {
            db.insert(
                l(i + 1),
                l(i + 2),
                PairStats {
                    direction: Gaussian::new(90.0, 5.0).unwrap(),
                    offset: Gaussian::new(4.0, 0.5).unwrap(),
                    sample_count: 8,
                },
            );
        }
        db
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let original = db(20);
        let mut faulted = original.clone();
        RlmCorruption {
            fraction: 0.0,
            seed: 1,
        }
        .apply_motion_db(&mut faulted);
        assert_eq!(faulted, original);
    }

    #[test]
    fn full_fraction_empties_the_database() {
        let mut faulted = db(20);
        RlmCorruption {
            fraction: 1.0,
            seed: 1,
        }
        .apply_motion_db(&mut faulted);
        assert!(faulted.is_empty());
        assert_eq!(faulted.location_count(), 21);
    }

    #[test]
    fn corruption_is_seed_reproducible() {
        let plan = RlmCorruption {
            fraction: 0.5,
            seed: 42,
        };
        let mut a = db(60);
        let mut b = db(60);
        plan.apply_motion_db(&mut a);
        plan.apply_motion_db(&mut b);
        assert_eq!(a, b);
        assert!(a.pair_count() > 10 && a.pair_count() < 50);

        let mut c = db(60);
        RlmCorruption {
            fraction: 0.5,
            seed: 43,
        }
        .apply_motion_db(&mut c);
        assert_ne!(a, c);
    }
}
