//! End-to-end integration tests: the full survey → crowdsourcing →
//! localization pipeline on the simulated office hall.

use moloc::core::config::MoLocConfig;
use moloc::eval::convergence::convergence_stats;
use moloc::eval::experiments::{fig6, fig7, fig8, table1};
use moloc::eval::metrics::{flatten, summarize};
use moloc::eval::pipeline::{localize_moloc, localize_wifi, EvalWorld};

fn world() -> EvalWorld {
    EvalWorld::small(101)
}

#[test]
fn moloc_outperforms_wifi_end_to_end() {
    let world = world();
    let setting = world.setting(6);
    let wifi = summarize(&flatten(&localize_wifi(&world, &setting)));
    let moloc = summarize(&flatten(&localize_moloc(
        &world,
        &setting,
        MoLocConfig::paper(),
    )));
    assert!(
        moloc.accuracy > wifi.accuracy,
        "MoLoc {:.2} vs WiFi {:.2}",
        moloc.accuracy,
        wifi.accuracy
    );
    assert!(
        moloc.mean_error_m < wifi.mean_error_m,
        "MoLoc {:.2} m vs WiFi {:.2} m",
        moloc.mean_error_m,
        wifi.mean_error_m
    );
}

#[test]
fn accuracy_improves_with_more_aps() {
    let world = world();
    let mut prev = 0.0;
    for n_aps in [4, 6] {
        let setting = world.setting(n_aps);
        let wifi = summarize(&flatten(&localize_wifi(&world, &setting)));
        assert!(
            wifi.accuracy >= prev - 0.03,
            "WiFi accuracy dropped from {prev:.2} at {n_aps} APs: {:.2}",
            wifi.accuracy
        );
        prev = wifi.accuracy;
    }
}

#[test]
fn motion_database_is_valid_against_the_map() {
    let world = world();
    let setting = world.setting(6);
    let fig = fig6::run(&world, &setting);
    assert!(fig.pairs >= 20, "only {} pairs trained", fig.pairs);
    // Direction errors bounded by the coarse threshold; offsets well
    // under a step length — the paper's validity criteria.
    assert!(fig.direction_errors.max().unwrap() <= 20.0);
    assert!(fig.offset_errors.max().unwrap() < 0.9);
    assert!(fig.direction_errors.median().unwrap() < 10.0);
    assert!(fig.offset_errors.median().unwrap() < 0.4);
}

#[test]
fn pipeline_is_deterministic_for_a_seed() {
    let w1 = EvalWorld::small(55);
    let w2 = EvalWorld::small(55);
    let s1 = w1.setting(5);
    let s2 = w2.setting(5);
    assert_eq!(s1.fdb, s2.fdb);
    assert_eq!(s1.motion_db, s2.motion_db);
    let o1 = flatten(&localize_moloc(&w1, &s1, MoLocConfig::paper()));
    let o2 = flatten(&localize_moloc(&w2, &s2, MoLocConfig::paper()));
    assert_eq!(o1, o2);
}

#[test]
fn different_seeds_produce_different_worlds() {
    let w1 = EvalWorld::small(1);
    let w2 = EvalWorld::small(2);
    assert_ne!(w1.corpus.train[0].scans, w2.corpus.train[0].scans);
}

#[test]
fn full_figure_suite_runs_on_one_setting() {
    let world = world();
    let setting = world.setting(6);
    let f7 = fig7::Fig7 {
        settings: vec![fig7::run_setting(&world, &setting, MoLocConfig::paper())],
    };
    // Fig. 8 derives from fig7; a symmetric hall must yield twins.
    let f8 = fig8::run(&f7);
    for s in &f8.settings {
        assert!(!s.ambiguous_locations.is_empty());
        assert!(s.wifi.mean_error_m > 0.0);
    }
    // Table I renders for the same outcomes.
    let t1 = table1::run(&f7);
    assert_eq!(t1.rows.len(), 2);
    let text = table1::render(&t1);
    assert!(text.contains("6-AP MoLoc"));
}

#[test]
fn convergence_stats_exist_for_wifi() {
    let world = world();
    let setting = world.setting(4);
    let wifi = localize_wifi(&world, &setting);
    // At 4 APs, some trace must start with a wrong estimate.
    let stats = convergence_stats(&wifi).expect("some trace starts wrong at 4 APs");
    assert!(stats.traces > 0);
    assert!(stats.mean_el >= 1.0);
}

#[test]
fn moloc_with_empty_motion_db_degrades_to_fingerprinting() {
    let world = world();
    let mut setting = world.setting(6);
    setting.motion_db = moloc::motion::matrix::MotionDb::new(world.hall.grid.len());
    let wifi = summarize(&flatten(&localize_wifi(&world, &setting)));
    let moloc = summarize(&flatten(&localize_moloc(
        &world,
        &setting,
        MoLocConfig::paper(),
    )));
    // With no motion entries every pair is "missing": posterior equals
    // the fingerprint distribution and MoLoc ≈ top-1 fingerprinting.
    assert!(
        (moloc.accuracy - wifi.accuracy).abs() < 0.1,
        "MoLoc {:.2} should track WiFi {:.2} with an empty motion DB",
        moloc.accuracy,
        wifi.accuracy
    );
}
