//! Integration tests of the core claim: motion distinguishes
//! fingerprint twins that fingerprinting alone cannot.

use moloc::prelude::*;
use moloc::stats::gaussian::Gaussian;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn fp(values: &[f64]) -> Fingerprint {
    Fingerprint::new(values.to_vec())
}

/// A corridor of five locations, 4 m apart going east. L1/L5 are exact
/// twins, L2/L4 are exact twins, L3 is unique.
fn corridor() -> MoLoc {
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), fp(&[-60.0, -40.0])),
        (l(2), fp(&[-50.0, -45.0])),
        (l(3), fp(&[-45.0, -50.0])),
        (l(4), fp(&[-50.0, -45.0])),
        (l(5), fp(&[-60.0, -40.0])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(5);
    let east = PairStats {
        direction: Gaussian::new(90.0, 5.0).unwrap(),
        offset: Gaussian::new(4.0, 0.3).unwrap(),
        sample_count: 15,
    };
    for i in 1..5 {
        mdb.insert(l(i), l(i + 1), east);
    }
    MoLoc::builder(fdb, mdb).build()
}

fn east(offset: f64) -> Option<MotionMeasurement> {
    Some(MotionMeasurement {
        direction_deg: 90.0,
        offset_m: offset,
    })
}

fn west(offset: f64) -> Option<MotionMeasurement> {
    Some(MotionMeasurement {
        direction_deg: 270.0,
        offset_m: offset,
    })
}

#[test]
fn walking_east_through_the_corridor_tracks_every_twin() {
    let system = corridor();
    let estimates = system
        .localize_sequence(&[
            (fp(&[-45.0, -50.0]), None),      // L3, unique
            (fp(&[-50.0, -45.0]), east(4.0)), // twin query → L4 (east of L3)
            (fp(&[-60.0, -40.0]), east(4.0)), // twin query → L5
        ])
        .unwrap();
    assert_eq!(estimates, vec![l(3), l(4), l(5)]);
}

#[test]
fn walking_west_picks_the_other_twins() {
    let system = corridor();
    let estimates = system
        .localize_sequence(&[
            (fp(&[-45.0, -50.0]), None),
            (fp(&[-50.0, -45.0]), west(4.0)), // → L2
            (fp(&[-60.0, -40.0]), west(4.0)), // → L1
        ])
        .unwrap();
    assert_eq!(estimates, vec![l(3), l(2), l(1)]);
}

#[test]
fn exact_twin_queries_are_ambiguous_without_motion() {
    let system = corridor();
    let mut a = system.tracker();
    a.observe(&fp(&[-45.0, -50.0]), None).unwrap();
    // Without motion the twins tie; the tracker resolves the tie
    // deterministically (lower id), which is *not* tracking.
    let no_motion = a.observe(&fp(&[-50.0, -45.0]), None).unwrap();
    assert_eq!(no_motion, l(2));

    let mut b = system.tracker();
    b.observe(&fp(&[-45.0, -50.0]), None).unwrap();
    let with_motion = b.observe(&fp(&[-50.0, -45.0]), east(4.0)).unwrap();
    assert_eq!(with_motion, l(4), "motion breaks the tie correctly");
}

#[test]
fn long_walk_with_noisy_measurements_still_tracks() {
    let system = corridor();
    let mut tracker = system.tracker();
    tracker.observe(&fp(&[-44.5, -50.5]), None).unwrap();
    // Walk east twice then back west twice, with sensor-level noise on
    // both the direction and the offset.
    let steps = [
        (fp(&[-50.4, -44.8]), 83.0, 4.4, l(4)),
        (fp(&[-59.3, -40.6]), 97.0, 3.7, l(5)),
        (fp(&[-49.6, -45.2]), 263.0, 4.2, l(4)),
        (fp(&[-45.3, -49.8]), 276.0, 3.8, l(3)),
    ];
    for (query, dir, off, want) in steps {
        let got = tracker
            .observe(
                &query,
                Some(MotionMeasurement {
                    direction_deg: dir,
                    offset_m: off,
                }),
            )
            .unwrap();
        assert_eq!(got, want);
    }
}

#[test]
fn offset_alone_separates_near_from_far_twins() {
    // L1 twin of L3; both east of L2 but at different walking distances
    // (L3 adjacent 4 m, L1 via a detour 9 m).
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), fp(&[-55.0, -55.0])),
        (l(2), fp(&[-40.0, -70.0])),
        (l(3), fp(&[-55.0, -55.0])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(3);
    mdb.insert(
        l(2),
        l(3),
        PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(4.0, 0.3).unwrap(),
            sample_count: 10,
        },
    );
    mdb.insert(
        l(2),
        l(1),
        PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(9.0, 0.4).unwrap(),
            sample_count: 10,
        },
    );
    let system = MoLoc::builder(fdb, mdb).build();

    let mut near = system.tracker();
    near.observe(&fp(&[-40.0, -70.0]), None).unwrap();
    assert_eq!(near.observe(&fp(&[-55.0, -55.0]), east(4.1)).unwrap(), l(3));

    let mut far = system.tracker();
    far.observe(&fp(&[-40.0, -70.0]), None).unwrap();
    assert_eq!(far.observe(&fp(&[-55.0, -55.0]), east(8.8)).unwrap(), l(1));
}

#[test]
fn wrong_initial_estimate_recovers_with_asymmetric_neighborhoods() {
    // Fig. 1(c): candidates {p, p′} after a wrong initial estimate; the
    // measured motion matches only p's trained continuation.
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), fp(&[-52.0, -52.0])), // p
        (l(2), fp(&[-52.0, -52.1])), // p′, twin of p
        (l(3), fp(&[-45.0, -60.0])), // q
        (l(4), fp(&[-45.1, -60.0])), // q′, twin of q
    ])
    .unwrap();
    let mut mdb = MotionDb::new(4);
    mdb.insert(
        l(1),
        l(3),
        PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(5.0, 0.3).unwrap(),
            sample_count: 10,
        },
    );
    mdb.insert(
        l(2),
        l(4),
        PairStats {
            direction: Gaussian::new(180.0, 5.0).unwrap(), // p′ → q′ goes SOUTH
            offset: Gaussian::new(5.0, 0.3).unwrap(),
            sample_count: 10,
        },
    );
    let system = MoLoc::builder(fdb, mdb).build();
    let mut tracker = system.tracker();
    // The initial query ties p/p′; the tie-break picks p (lower id),
    // but suppose the user is *actually* at p′... then she walks south.
    tracker.observe(&fp(&[-52.0, -52.05]), None).unwrap();
    let got = tracker
        .observe(
            &fp(&[-45.05, -60.0]),
            Some(MotionMeasurement {
                direction_deg: 178.0,
                offset_m: 5.1,
            }),
        )
        .unwrap();
    assert_eq!(got, l(4), "southward motion identifies q′ via p′");
}
