//! Integration tests across the comparator localizers: the online
//! tracker, the offline HMM, the particle filter, and the centroid
//! refinement must agree on easy worlds and expose their documented
//! trade-offs on hard ones.

use moloc::core::particle::{ParticleConfig, ParticleLocalizer};
use moloc::core::viterbi::ViterbiLocalizer;
use moloc::fingerprint::centroid::CentroidLocalizer;
use moloc::prelude::*;
use moloc::stats::gaussian::Gaussian;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn fp(v: &[f64]) -> Fingerprint {
    Fingerprint::new(v.to_vec())
}

/// Corridor of four locations, 4 m apart going east; L2/L4 twins.
fn corridor() -> (FingerprintDb, MotionDb, ReferenceGrid) {
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), fp(&[-40.0, -70.0])),
        (l(2), fp(&[-50.0, -55.0])),
        (l(3), fp(&[-60.0, -45.0])),
        (l(4), fp(&[-50.0, -55.1])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(4);
    let east = PairStats {
        direction: Gaussian::new(90.0, 5.0).unwrap(),
        offset: Gaussian::new(4.0, 0.3).unwrap(),
        sample_count: 10,
    };
    for i in 1..4 {
        mdb.insert(l(i), l(i + 1), east);
    }
    let grid = ReferenceGrid::new(Vec2::new(2.0, 2.0), 4, 1, 4.0, 4.0).unwrap();
    (fdb, mdb, grid)
}

fn eastward_queries() -> Vec<(Fingerprint, Option<MotionMeasurement>)> {
    let east = Some(MotionMeasurement {
        direction_deg: 90.0,
        offset_m: 4.0,
    });
    vec![
        (fp(&[-40.5, -69.5]), None),
        (fp(&[-50.2, -54.9]), east),
        (fp(&[-59.5, -45.3]), east),
        (fp(&[-50.1, -55.05]), east),
    ]
}

#[test]
fn all_motion_aware_localizers_track_the_eastward_walk() {
    let (fdb, mdb, grid) = corridor();
    let expected = vec![l(1), l(2), l(3), l(4)];
    let queries = eastward_queries();

    // Online tracker.
    let system = MoLoc::builder(fdb.clone(), mdb.clone()).build();
    assert_eq!(system.localize_sequence(&queries).unwrap(), expected);

    // Offline Viterbi.
    let viterbi = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
    assert_eq!(viterbi.localize_trace(&queries).unwrap(), expected);

    // Particle filter.
    let mut pf = ParticleLocalizer::new(&fdb, &grid, ParticleConfig::default());
    let pf_path: Vec<LocationId> = queries.iter().map(|(q, m)| pf.observe(q, *m)).collect();
    assert_eq!(pf_path, expected);
}

#[test]
fn fingerprint_only_methods_cannot_separate_the_twins() {
    let (fdb, _, grid) = corridor();
    // A query exactly between the twins' fingerprints.
    let twin_query = fp(&[-50.0, -55.07]);
    let nn = NnLocalizer::new(&fdb).localize(&twin_query).unwrap();
    assert!(nn == l(2) || nn == l(4));
    // The centroid lands between the twins (x between their positions),
    // which is 4+ m from both — the geometric cost of ambiguity.
    let centroid = CentroidLocalizer::new(&fdb, &grid, 4)
        .localize(&twin_query)
        .unwrap();
    let (p2, p4) = (grid.position(l(2)), grid.position(l(4)));
    assert!(centroid.x > p2.x - 1e-9 && centroid.x < p4.x + 1e-9);
}

#[test]
fn viterbi_retroactively_fixes_the_start_that_the_tracker_cannot() {
    let (fdb, mdb, _) = corridor();
    // Start on a twin query, then walk east twice: offline smoothing
    // knows the start must have been L2 (L4 has no east continuation).
    let east = Some(MotionMeasurement {
        direction_deg: 90.0,
        offset_m: 4.0,
    });
    let queries = vec![
        (fp(&[-50.0, -55.05]), None), // ambiguous start
        (fp(&[-60.0, -45.0]), east),  // L3
        (fp(&[-50.0, -55.05]), east), // L4
    ];
    let viterbi = ViterbiLocalizer::new(&fdb, &mdb, MoLocConfig::paper());
    let path = viterbi.localize_trace(&queries).unwrap();
    assert_eq!(path, vec![l(2), l(3), l(4)]);
}

#[test]
fn particle_filter_is_seed_stable_on_unambiguous_worlds() {
    let (fdb, _, grid) = corridor();
    for seed in [0, 1, 2, 3] {
        let config = ParticleConfig {
            seed,
            ..ParticleConfig::default()
        };
        let mut pf = ParticleLocalizer::new(&fdb, &grid, config);
        assert_eq!(pf.observe(&fp(&[-40.0, -70.0]), None), l(1));
    }
}

#[test]
fn centroid_refinement_beats_nn_between_survey_points() {
    // Two surveyed locations 8 m apart; the user stands midway. NN must
    // err by 4 m; the centroid interpolates.
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), fp(&[-40.0, -70.0])),
        (l(2), fp(&[-60.0, -50.0])),
    ])
    .unwrap();
    let grid = ReferenceGrid::new(Vec2::new(0.0, 0.0), 2, 1, 8.0, 8.0).unwrap();
    let midway_query = fp(&[-50.0, -60.0]);
    let truth = Vec2::new(4.0, 0.0);

    let nn = NnLocalizer::new(&fdb).localize(&midway_query).unwrap();
    let nn_error = grid.position(nn).dist(truth);
    let centroid = CentroidLocalizer::new(&fdb, &grid, 2)
        .localize(&midway_query)
        .unwrap();
    let centroid_error = centroid.dist(truth);
    assert!(
        centroid_error < nn_error,
        "centroid {centroid_error:.2} m vs NN {nn_error:.2} m"
    );
    assert!(centroid_error < 0.5, "centroid error {centroid_error:.2} m");
}
