//! Serde round-trip tests: the deployable artifacts (databases,
//! configurations, measurements) must survive serialization, since a
//! real deployment ships them between phones and a server.

use moloc::core::config::MoLocConfig;
use moloc::core::tracker::MotionMeasurement;
use moloc::prelude::*;
use moloc::stats::gaussian::Gaussian;

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn fingerprint_round_trips() {
    let fp = Fingerprint::new(vec![-40.5, -62.25, -71.0]);
    assert_eq!(round_trip(&fp), fp);
}

#[test]
fn fingerprint_db_round_trips() {
    let db = FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-40.0, -60.0])),
        (l(2), Fingerprint::new(vec![-60.0, -40.0])),
    ])
    .unwrap();
    let back = round_trip(&db);
    assert_eq!(back, db);
    assert_eq!(back.fingerprint(l(2)).unwrap().values(), &[-60.0, -40.0]);
}

#[test]
fn motion_db_round_trips_with_mirror_semantics() {
    let mut db = MotionDb::new(4);
    db.insert(
        l(1),
        l(3),
        PairStats {
            direction: Gaussian::new(90.0, 4.0).unwrap(),
            offset: Gaussian::new(5.8, 0.2).unwrap(),
            sample_count: 31,
        },
    );
    let back = round_trip(&db);
    assert_eq!(back, db);
    // Mirror lookups still derive after the round trip.
    let rev = back.get(l(3), l(1)).unwrap();
    assert_eq!(rev.direction.mean(), 270.0);
    assert_eq!(rev.sample_count, 31);
}

#[test]
fn rlm_round_trips() {
    let rlm = Rlm::new(l(5), l(2), 271.5, 5.75).unwrap();
    let back = round_trip(&rlm);
    assert_eq!(back, rlm);
    assert_eq!(back.canonical().from, l(2));
}

#[test]
fn configs_round_trip() {
    let config = MoLocConfig {
        k: 6,
        alpha_deg: 15.0,
        ..MoLocConfig::paper()
    };
    assert_eq!(round_trip(&config), config);

    let sanitation = SanitationConfig {
        coarse_offset_m: 2.5,
        ..SanitationConfig::paper()
    };
    assert_eq!(round_trip(&sanitation), sanitation);
}

#[test]
fn motion_measurement_round_trips() {
    let m = MotionMeasurement {
        direction_deg: 123.4,
        offset_m: 4.2,
    };
    assert_eq!(round_trip(&m), m);
}

#[test]
fn candidate_set_round_trips_normalized() {
    let set = CandidateSet::from_weights(vec![(l(1), 3.0), (l(2), 1.0)]).unwrap();
    let back = round_trip(&set);
    assert_eq!(back, set);
    assert!((back.total_probability() - 1.0).abs() < 1e-12);
}

#[test]
fn user_profile_round_trips() {
    let user = moloc::mobility::user::paper_users()[2];
    assert_eq!(round_trip(&user), user);
}

#[test]
fn deployed_system_survives_database_round_trips() {
    // Serialize both databases, rebuild the system, and check the
    // tracker behaves identically.
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-40.0, -70.0])),
        (l(2), Fingerprint::new(vec![-70.0, -40.0])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(2);
    mdb.insert(
        l(1),
        l(2),
        PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(5.0, 0.3).unwrap(),
            sample_count: 9,
        },
    );
    let original = MoLoc::builder(fdb.clone(), mdb.clone()).build();
    let revived = MoLoc::builder(round_trip(&fdb), round_trip(&mdb)).build();

    let queries = [
        (Fingerprint::new(vec![-41.0, -69.0]), None),
        (
            Fingerprint::new(vec![-69.0, -41.0]),
            Some(MotionMeasurement {
                direction_deg: 91.0,
                offset_m: 5.1,
            }),
        ),
    ];
    assert_eq!(
        original.localize_sequence(&queries).unwrap(),
        revived.localize_sequence(&queries).unwrap()
    );
}
