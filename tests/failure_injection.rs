//! Failure-injection integration tests: the pipeline must degrade
//! gracefully, not collapse, when sensors or the crowd misbehave.

use moloc::core::config::MoLocConfig;
use moloc::eval::metrics::{flatten, summarize};
use moloc::eval::pipeline::{
    analyze_trace, localize_moloc, localize_wifi, CountingMethod, EvalWorld,
};
use moloc::motion::filter::SanitationConfig;
use moloc::motion::rlm::Rlm;
use moloc::prelude::*;
use moloc::sensors::steps::StepDetector;
use moloc::stats::gaussian::Gaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn l(i: u32) -> LocationId {
    LocationId::new(i)
}

#[test]
fn outlier_polluted_crowdsourcing_is_sanitized() {
    let world = EvalWorld::small(7);
    let clean = world.setting(6);

    // Re-run construction but pollute the stream with garbage uploads.
    let mut builder = MotionDbBuilder::new(world.hall.map.clone(), SanitationConfig::paper())
        .expect("paper sanitation config is valid");
    let detector = StepDetector::default();
    let mut rng = StdRng::seed_from_u64(99);
    for trace in &world.corpus.train {
        let analysis = analyze_trace(
            trace,
            &clean.fdb,
            &world.hall,
            &detector,
            CountingMethod::Continuous,
            6,
        );
        for (interval, m) in analysis.intervals.iter().zip(&analysis.measurements) {
            let Some(m) = m else { continue };
            let from = analysis.nn_estimates[interval.from_index];
            let to = analysis.nn_estimates[interval.to_index];
            if from != to {
                if let Ok(rlm) = Rlm::new(from, to, m.direction_deg, m.offset_m) {
                    builder.observe(rlm);
                }
            }
            // Every interval also uploads a corrupted twin: random
            // direction, wild offset.
            let a = l(rng.gen_range(1..=28));
            let b = l(rng.gen_range(1..=28));
            if a != b {
                let bad = Rlm::new(a, b, rng.gen_range(0.0..360.0), rng.gen_range(15.0..40.0))
                    .expect("valid rlm");
                builder.observe(bad);
            }
        }
    }
    let (polluted_db, report) = builder.build();
    assert!(
        report.rejected_coarse > report.observed / 3,
        "sanitation should reject the garbage: {report:?}"
    );

    // Localization quality with the polluted-but-sanitized DB stays
    // close to the clean run.
    let mut polluted = clean.clone();
    polluted.motion_db = polluted_db;
    let clean_acc = summarize(&flatten(&localize_moloc(
        &world,
        &clean,
        MoLocConfig::paper(),
    )))
    .accuracy;
    let polluted_acc = summarize(&flatten(&localize_moloc(
        &world,
        &polluted,
        MoLocConfig::paper(),
    )))
    .accuracy;
    assert!(
        polluted_acc > clean_acc - 0.12,
        "polluted {polluted_acc:.2} vs clean {clean_acc:.2}"
    );
}

#[test]
fn heavily_biased_compass_does_not_crash_and_wifi_is_a_floor() {
    // A tracker fed systematically rotated motion measurements must not
    // do much worse than having no motion at all, thanks to the
    // degenerate-evidence fallback and the missing-pair floor.
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-40.0, -70.0])),
        (l(2), Fingerprint::new(vec![-55.0, -55.0])),
        (l(3), Fingerprint::new(vec![-70.0, -40.0])),
    ])
    .unwrap();
    let mut mdb = MotionDb::new(3);
    let east = PairStats {
        direction: Gaussian::new(90.0, 5.0).unwrap(),
        offset: Gaussian::new(4.0, 0.3).unwrap(),
        sample_count: 10,
    };
    mdb.insert(l(1), l(2), east);
    mdb.insert(l(2), l(3), east);
    let system = MoLoc::builder(fdb, mdb).build();
    let mut tracker = system.tracker();
    tracker
        .observe(&Fingerprint::new(vec![-40.0, -70.0]), None)
        .unwrap();
    // True motion east, measured compass off by 120°.
    let est = tracker
        .observe(
            &Fingerprint::new(vec![-54.0, -56.0]),
            Some(MotionMeasurement {
                direction_deg: 210.0,
                offset_m: 4.0,
            }),
        )
        .unwrap();
    // The fingerprint strongly favors L2; broken motion evidence must
    // not override an unambiguous fingerprint.
    assert_eq!(est, l(2));
}

#[test]
fn stationary_user_keeps_her_location() {
    let fdb = FingerprintDb::from_fingerprints(vec![
        (l(1), Fingerprint::new(vec![-50.0, -50.0])),
        (l(2), Fingerprint::new(vec![-50.0, -50.2])), // near-twin
    ])
    .unwrap();
    let mut mdb = MotionDb::new(2);
    mdb.insert(
        l(1),
        l(2),
        PairStats {
            direction: Gaussian::new(90.0, 5.0).unwrap(),
            offset: Gaussian::new(6.0, 0.3).unwrap(),
            sample_count: 10,
        },
    );
    let system = MoLoc::builder(fdb, mdb).build();
    let mut tracker = system.tracker();
    tracker
        .observe(&Fingerprint::new(vec![-50.0, -50.0]), None)
        .unwrap();
    // No steps detected → offset ~0. The stationary model keeps L1 in
    // front even when the twin's fingerprint momentarily matches
    // better.
    let est = tracker
        .observe(
            &Fingerprint::new(vec![-50.0, -50.15]),
            Some(MotionMeasurement {
                direction_deg: 45.0,
                offset_m: 0.1,
            }),
        )
        .unwrap();
    assert_eq!(est, l(1), "a user who did not walk should not jump 6 m");
}

#[test]
fn ap_outage_subsets_still_work() {
    let world = EvalWorld::small(13);
    for n_aps in [4, 5] {
        let setting = world.setting(n_aps);
        let wifi = summarize(&flatten(&localize_wifi(&world, &setting)));
        let moloc = summarize(&flatten(&localize_moloc(
            &world,
            &setting,
            MoLocConfig::paper(),
        )));
        assert!(wifi.accuracy > 0.15, "{n_aps}-AP WiFi {:.2}", wifi.accuracy);
        assert!(
            moloc.accuracy >= wifi.accuracy - 0.05,
            "{n_aps}-AP MoLoc {:.2} vs WiFi {:.2}",
            moloc.accuracy,
            wifi.accuracy
        );
    }
}

#[test]
fn strict_zero_missing_pair_probability_is_survivable() {
    // The strict Eq. 5 (untrained pair ⇒ probability 0) relies on the
    // degenerate fallback to avoid dividing by zero.
    let world = EvalWorld::small(17);
    let setting = world.setting(6);
    let config = MoLocConfig {
        missing_pair_prob: 0.0,
        ..MoLocConfig::paper()
    };
    let outcomes = localize_moloc(&world, &setting, config);
    let summary = summarize(&flatten(&outcomes));
    assert!(summary.accuracy > 0.2, "accuracy {:.2}", summary.accuracy);
}
