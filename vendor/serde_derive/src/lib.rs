//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this crate parses the derive input token
//! stream by hand and emits code as strings. It supports exactly the
//! shapes this workspace derives on:
//!
//! - non-generic structs with named fields (including
//!   `#[serde(with = "module")]` on individual fields),
//! - tuple structs (newtype → inner value, otherwise an array),
//! - unit structs (→ `Value::Null`),
//! - enums whose variants are all unit variants (→ variant name as a
//!   string).
//!
//! Anything else (generics, payload-carrying enums) panics with a
//! clear message at macro-expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = gen_serialize(&shape);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive stub produced invalid Rust: {e}\n{code}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = gen_deserialize(&shape);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive stub produced invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
}

enum Shape {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    other => panic!("serde_derive stub: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            None => Shape::UnitStruct { name },
            other => panic!("serde_derive stub: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream()),
            },
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

/// Extracts `with = "path"` from the contents of a `#[serde(...)]`
/// attribute, panicking on any serde attribute this stub cannot honor.
fn parse_serde_attr(group: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    match (tokens.first(), tokens.get(1), tokens.get(2)) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
        ) if key.to_string() == "with" && eq.as_char() == '=' => {
            let raw = lit.to_string();
            let path = raw.trim_matches('"').to_string();
            Some(path)
        }
        _ => panic!(
            "serde_derive stub: only `#[serde(with = \"path\")]` is supported, got #[serde({})]",
            tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;

    while i < tokens.len() {
        let mut with = None;

        // Field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive stub: malformed field attribute: {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" {
                    with = parse_serde_attr(args.stream());
                }
            }
            i += 1;
        }

        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }

        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
        }

        // Skip the type: everything until a comma at angle-bracket depth 0.
        // Grouped tokens (parens/brackets) are single trees, so only `<`/`>`
        // need explicit depth tracking (e.g. `BTreeMap<(u32, u32), PairStats>`).
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }

        fields.push(Field { name, with });
    }

    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut saw_trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == tokens.len() {
                        saw_trailing_comma = true;
                    } else {
                        arity += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    arity
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;

    while i < tokens.len() {
        // Variant attributes (e.g. #[default]).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2; // '#' + bracket group
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive stub: enum variant `{name}` carries data; only unit variants are supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip `= expr` up to the comma.
                i += 1;
                while let Some(tok) = tokens.get(i) {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive stub: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(name);
    }

    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                let value_expr = match &f.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{fname}, ::serde::ValueSerializer)\
                         .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?"
                    ),
                    None => format!(
                        "::serde::to_value(&self.{fname})\
                         .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?"
                    ),
                };
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{fname}\"), {value_expr}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Serializer::serialize_value(serializer, ::serde::Value::Object(__fields))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "let __v = ::serde::to_value(&self.0)\
                     .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?;\n\
                 ::serde::Serializer::serialize_value(serializer, __v)"
                    .to_string()
            } else {
                let mut pushes = String::new();
                for idx in 0..*arity {
                    pushes.push_str(&format!(
                        "__items.push(::serde::to_value(&self.{idx})\
                             .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?);\n"
                    ));
                }
                format!(
                    "let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Serializer::serialize_value(serializer, ::serde::Value::Array(__items))"
                )
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                     -> ::core::result::Result<S::Ok, S::Error> {{\n\
                     ::serde::Serializer::serialize_value(serializer, ::serde::Value::Null)\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let __name = match self {{\n{arms}}};\n\
                         ::serde::Serializer::serialize_value(\n\
                             serializer,\n\
                             ::serde::Value::Str(::std::string::String::from(__name)),\n\
                         )\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                let expr = match &f.with {
                    Some(path) => format!(
                        "{path}::deserialize(::serde::ValueDeserializer::new(\
                             ::serde::take_field(&mut __fields, \"{fname}\")))\
                         .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?"
                    ),
                    None => format!(
                        "::serde::from_value(::serde::take_field(&mut __fields, \"{fname}\"))\
                         .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?"
                    ),
                };
                inits.push_str(&format!("{fname}: {expr},\n"));
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         let __value = ::serde::Deserializer::deserialize_value(deserializer)?;\n\
                         let mut __fields = match __value {{\n\
                             ::serde::Value::Object(fields) => fields,\n\
                             other => return ::core::result::Result::Err(\n\
                                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                     \"expected object for struct {name}, got {{:?}}\", other))),\n\
                         }};\n\
                         ::core::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "let __value = ::serde::Deserializer::deserialize_value(deserializer)?;\n\
                     ::core::result::Result::Ok({name}(::serde::from_value(__value)\
                         .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?))"
                )
            } else {
                let mut takes = String::new();
                for _ in 0..*arity {
                    takes.push_str(
                        "::serde::from_value(__items.remove(0))\
                             .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?,\n",
                    );
                }
                format!(
                    "let __value = ::serde::Deserializer::deserialize_value(deserializer)?;\n\
                     let mut __items = match __value {{\n\
                         ::serde::Value::Array(items) => items,\n\
                         other => return ::core::result::Result::Err(\n\
                             <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                 \"expected array for tuple struct {name}, got {{:?}}\", other))),\n\
                     }};\n\
                     if __items.len() != {arity} {{\n\
                         return ::core::result::Result::Err(\n\
                             <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                 \"expected {arity} elements for {name}, got {{}}\", __items.len())));\n\
                     }}\n\
                     ::core::result::Result::Ok({name}(\n{takes}))"
                )
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                     -> ::core::result::Result<Self, D::Error> {{\n\
                     let _ = ::serde::Deserializer::deserialize_value(deserializer)?;\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         let __value = ::serde::Deserializer::deserialize_value(deserializer)?;\n\
                         let __s = match __value {{\n\
                             ::serde::Value::Str(s) => s,\n\
                             other => return ::core::result::Result::Err(\n\
                                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                     \"expected string for enum {name}, got {{:?}}\", other))),\n\
                         }};\n\
                         match __s.as_str() {{\n\
                             {arms}\
                             other => ::core::result::Result::Err(\n\
                                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                     \"unknown {name} variant: {{}}\", other))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
