//! Offline subset of `proptest`.
//!
//! Provides the surface this workspace's property tests use — range,
//! tuple, and `prop::collection::vec` strategies, `prop_map` /
//! `prop_filter`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros — over a deterministic
//! per-test RNG (seeded from the test name, overridable with
//! `PROPTEST_SEED`). There is no shrinking: a failing case panics with
//! the assertion message and the case number so it can be replayed by
//! rerunning the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each `proptest!` test runs (override with
/// `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives value generation for one property test.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Builds a runner whose RNG is seeded from the test name, so each
    /// test sees the same deterministic case sequence on every run.
    pub fn new(test_name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Discards values failing `keep`, resampling until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        keep: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            keep,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.map)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let value = self.inner.generate(runner);
            if (self.keep)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.whence
        );
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi {
                    return lo;
                }
                // Uniform over [lo, hi): the closed upper bound has
                // measure zero, so this is an adequate approximation.
                runner.rng().gen_range(lo..hi)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Accepted element-count specifications for [`vec`].
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                runner.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Namespace mirror of upstream's `proptest::prop` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import entry point used by tests.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions that run their body across many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                let mut __runner = $crate::TestRunner::new(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                let __max_rejects = __cases.saturating_mul(64);
                while __passed < __cases {
                    let ($($arg,)*) = (
                        $($crate::Strategy::generate(&($strat), &mut __runner),)*
                    );
                    let __outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            if __rejected > __max_rejects {
                                panic!(
                                    "{}: too many rejected cases ({} rejects, {} passes)",
                                    stringify!($name), __rejected, __passed,
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "{}: property failed at case {}: {}",
                                stringify!($name), __passed, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        1u32..5
    }

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (small(), 0.0..1.0f64), n in 0usize..4) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_map_filter(
            v in prop::collection::vec((0u32..10).prop_map(|x| x * 2), 2..6),
            odd in (1u32..100).prop_filter("odd", |x| x % 2 == 1),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert_eq!(odd % 2, 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 3 == 0);
            prop_assert_eq!(x % 3, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRunner::new("some_test");
        let mut b = crate::TestRunner::new("some_test");
        let sa: Vec<u32> = (0..10).map(|_| (0u32..1000).generate(&mut a)).collect();
        let sb: Vec<u32> = (0..10).map(|_| (0u32..1000).generate(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
