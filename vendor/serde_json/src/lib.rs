//! Offline subset of `serde_json`: prints and parses JSON through the
//! vendored serde crate's [`serde::Value`] tree.
//!
//! Numbers print via Rust's `Display`, which emits the shortest string
//! that round-trips, so `to_string` → `from_str` is lossless for every
//! finite `f64`. Non-finite floats are a serialization error, exactly
//! as in upstream `serde_json`.

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self::new(msg.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&tree, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-indented JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value_pretty(&tree, &mut out, 0)?;
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let tree = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    serde::from_value(tree).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn primitives_round_trip() {
        let json = super::to_string(&3.25f64).unwrap();
        assert_eq!(json, "3.25");
        let back: f64 = super::from_str(&json).unwrap();
        assert_eq!(back, 3.25);

        let back: i64 = super::from_str("-42").unwrap();
        assert_eq!(back, -42);

        let back: bool = super::from_str("true").unwrap();
        assert!(back);
    }

    #[test]
    fn shortest_float_display_round_trips() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123_456.789_012_345] {
            let json = super::to_string(&x).unwrap();
            let back: f64 = super::from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} failed to round trip");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = super::to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        let back: Vec<Vec<u32>> = super::from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt: Option<String> = Some("a \"quoted\" \u{1F600} string".into());
        let json = super::to_string(&opt).unwrap();
        let back: Option<String> = super::from_str(&json).unwrap();
        assert_eq!(back, opt);
    }

    #[test]
    fn rejects_non_finite_and_garbage() {
        assert!(super::to_string(&f64::NAN).is_err());
        assert!(super::from_str::<f64>("1.5 extra").is_err());
        assert!(super::from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
