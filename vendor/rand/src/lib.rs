//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`]
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, a deterministic [`rngs::StdRng`], and
//! [`seq::SliceRandom::choose`]/`shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through a SplitMix64 expander.
//! It is *not* bit-compatible with upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this workspace only relies on
//! seeded determinism (same seed → same stream), which this provides.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their full domain (the
/// `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled (the `SampleRange` of upstream `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding may land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing random-value API.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(1u32..=28);
            assert!((1..=28).contains(&b));
            let c = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&c));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*pool.as_slice().choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
