//! Offline, dependency-free subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature serde built around an owned value tree
//! ([`Value`]): serializers accept a fully built `Value`, deserializers
//! produce one. The public trait shapes (`Serialize`, `Serializer`,
//! `Deserialize<'de>`, `Deserializer<'de>`, `de::DeserializeOwned`,
//! `ser::Error`/`de::Error`) match the subset of real serde this
//! workspace uses, so application code compiles unchanged against
//! either implementation.
//!
//! The `#[derive(Serialize, Deserialize)]` macros are re-exported from
//! the sibling `serde_derive` stub and generate code against this data
//! model. Supported shapes: named-field structs (with the
//! `#[serde(with = "module")]` field attribute), tuple/newtype/unit
//! structs, and enums with unit variants.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The owned data-model tree every serializer/deserializer speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Array(Vec<Value>),
    /// A map with string keys; order-preserving for determinism.
    Object(Vec<(String, Value)>),
}

/// The error type of the value-tree serializer/deserializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

/// Serialization-side traits and errors.
pub mod ser {
    /// Errors produced by serializers.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::ValueError(msg.to_string())
        }
    }
}

/// Deserialization-side traits and errors.
pub mod de {
    /// Errors produced by deserializers.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::ValueError(msg.to_string())
        }
    }

    /// Types deserializable from any lifetime (all of them, in this
    /// owned-value model).
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

/// A type that can serialize itself through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized values.
pub trait Serializer: Sized {
    /// What a successful serialization yields.
    type Ok;
    /// The serializer's error type.
    type Error: ser::Error;

    /// Accepts a fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source of deserialized values.
pub trait Deserializer<'de>: Sized {
    /// The deserializer's error type.
    type Error: de::Error;

    /// Yields the full value tree of the input.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can deserialize itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The canonical serializer: hands the value tree straight through.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// The canonical deserializer: reads from an owned value tree.
#[derive(Debug, Clone)]
pub struct ValueDeserializer(Value);

impl ValueDeserializer {
    /// Wraps a value tree.
    pub fn new(value: Value) -> Self {
        Self(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

// Identity impls: a `Value` serializes to and deserializes from itself,
// so callers can parse arbitrary JSON into the tree and walk it.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any owned type from a [`Value`] tree.
pub fn from_value<T: de::DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Removes and returns the named field from a decoded object, or
/// `Value::Null` when absent (lets `Option` fields default to `None`).
/// Used by derive-generated code.
#[doc(hidden)]
pub fn take_field(fields: &mut Vec<(String, Value)>, name: &str) -> Value {
    match fields.iter().position(|(k, _)| k == name) {
        Some(i) => fields.swap_remove(i).1,
        None => Value::Null,
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                let v = d.deserialize_value()?;
                let n: u64 = match v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    other => {
                        return Err(D::Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| D::Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                let v = d.deserialize_value()?;
                let n: i64 = match v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    other => {
                        return Err(D::Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| D::Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(D::Error::custom(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = to_value(v).map_err(S::Error::custom)?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(S::Error::custom)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<Ser: Serializer>(&self, s: Ser) -> Result<Ser::Ok, Ser::Error> {
                let items = vec![
                    $(to_value(&self.$idx)
                        .map_err(|e| <Ser::Error as ser::Error>::custom(e))?,)+
                ];
                s.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($name: de::DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                let Value::Array(items) = d.deserialize_value()? else {
                    return Err(<De::Error as de::Error>::custom("expected tuple array"));
                };
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if items.len() != LEN {
                    return Err(<De::Error as de::Error>::custom(format!(
                        "expected tuple of length {LEN}, got {}",
                        items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($(
                    {
                        let _ = $idx;
                        let item = iter.next().expect("length checked");
                        from_value::<$name>(item)
                            .map_err(|e| <De::Error as de::Error>::custom(e))?
                    },
                )+))
            }
        }
    )+};
}

tuple_impls!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        // Entry-list form: map keys in this workspace are not strings.
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            out.push(Value::Array(vec![
                to_value(k).map_err(S::Error::custom)?,
                to_value(v).map_err(S::Error::custom)?,
            ]));
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: de::DeserializeOwned + Ord,
    V: de::DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        let entries = Vec::<(K, V)>::deserialize(d)?;
        let _ = |e: ValueError| D::Error::custom(e);
        Ok(entries.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(from_value::<u32>(to_value(&7u32).unwrap()).unwrap(), 7);
        assert_eq!(from_value::<f64>(to_value(&1.5f64).unwrap()).unwrap(), 1.5);
        assert!(from_value::<bool>(to_value(&true).unwrap()).unwrap());
        let v = vec![(1u32, 2.0f64), (3u32, 4.0f64)];
        assert_eq!(
            from_value::<Vec<(u32, f64)>>(to_value(&v).unwrap()).unwrap(),
            v
        );
    }

    #[test]
    fn option_none_is_null() {
        assert_eq!(to_value(&None::<u32>).unwrap(), Value::Null);
        assert_eq!(from_value::<Option<u32>>(Value::Null).unwrap(), None);
        assert_eq!(
            from_value::<Option<u32>>(Value::U64(3)).unwrap(),
            Some(3u32)
        );
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(from_value::<u32>(Value::Str("x".into())).is_err());
        assert!(from_value::<Vec<u32>>(Value::Bool(true)).is_err());
    }
}
