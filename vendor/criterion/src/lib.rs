//! Offline subset of `criterion`.
//!
//! Real measurements, minimal machinery: each `bench_function` warms
//! up, auto-calibrates an iteration count, takes `sample_size` timed
//! samples, and reports mean/median per-iteration wall time. Results
//! are kept on the [`Criterion`] value so bench binaries can
//! post-process them (e.g. write a JSON summary) from a final
//! `criterion_group!` target.

use std::time::{Duration, Instant};

/// Summary statistics for one completed benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Mean wall time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Median wall time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Benchmark driver: timing configuration plus collected results.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up budget per benchmark (also used to calibrate
    /// the per-sample iteration count).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and records its measurement.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            sample_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let Bencher {
            mut sample_ns,
            iters_per_sample,
            ..
        } = bencher;
        assert!(
            !sample_ns.is_empty(),
            "benchmark {id} never called Bencher::iter"
        );
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        let median_ns = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            (sample_ns[sample_ns.len() / 2 - 1] + sample_ns[sample_ns.len() / 2]) / 2.0
        };
        let measurement = Measurement {
            name: id.to_string(),
            mean_ns,
            median_ns,
            min_ns: sample_ns[0],
            samples: sample_ns.len(),
            iters_per_sample,
        };
        println!(
            "{:<48} time: [{} {} {}]  ({} samples x {} iters)",
            measurement.name,
            format_ns(measurement.min_ns),
            format_ns(measurement.median_ns),
            format_ns(measurement.mean_ns),
            measurement.samples,
            measurement.iters_per_sample,
        );
        self.measurements.push(measurement);
        self
    }

    /// All measurements recorded so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The most recent measurement with this exact name.
    pub fn measurement(&self, name: &str) -> Option<&Measurement> {
        self.measurements.iter().rev().find(|m| m.name == name)
    }

    /// Prints a one-line closing summary.
    pub fn final_summary(&self) {
        println!(
            "benchmarks complete: {} measurements",
            self.measurements.len()
        );
    }
}

/// Passed to the closure given to `bench_function`; calls the routine
/// under measurement.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`, recording per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and calibrate: run until the warm-up budget is spent,
        // doubling the batch size so the loop overhead amortizes.
        let warm_start = Instant::now();
        let mut batch = 1u64;
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            warm_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let warm_elapsed = warm_start.elapsed().as_nanos().max(1) as f64;
        let est_ns_per_iter = warm_elapsed / warm_iters as f64;

        // Spread the measurement budget across the samples.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.sample_size as f64;
        let iters = ((per_sample_ns / est_ns_per_iter).floor() as u64).max(1);

        self.iters_per_sample = iters;
        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.sample_ns.push(elapsed / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines a function that runs a list of benchmark targets with a
/// shared `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export so bench code can use `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("tiny/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let m = c.measurement("tiny/sum").expect("recorded");
        assert_eq!(m.samples, 5);
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns * 1.5);
    }
}
