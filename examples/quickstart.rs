//! Quickstart: build a MoLoc system by hand and localize a short walk.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A tiny world is assembled manually — three reference locations in a
//! row, two of which are fingerprint twins — to show the API surface of
//! the core crate: a fingerprint database, a motion database, and the
//! stateful tracker that fuses both.

use moloc::prelude::*;
use moloc::stats::gaussian::Gaussian;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three locations in a row, 4 m apart going east:
    //   L1 ── L2 ── L3
    // L1 and L3 are fingerprint twins (their RSS vectors are nearly
    // identical); L2 is distinctive.
    let fdb = FingerprintDb::from_fingerprints(vec![
        (LocationId::new(1), Fingerprint::new(vec![-50.0, -50.0])),
        (LocationId::new(2), Fingerprint::new(vec![-40.0, -70.0])),
        (LocationId::new(3), Fingerprint::new(vec![-50.0, -50.2])),
    ])?;

    // The motion database would normally be crowdsourced (see the
    // `office_hall` example); here we write the entries directly.
    let east = |offset: f64| PairStats {
        direction: Gaussian::new(90.0, 5.0).expect("valid std"),
        offset: Gaussian::new(offset, 0.3).expect("valid std"),
        sample_count: 10,
    };
    let mut mdb = MotionDb::new(3);
    mdb.insert(LocationId::new(1), LocationId::new(2), east(4.0));
    mdb.insert(LocationId::new(2), LocationId::new(3), east(4.0));
    mdb.insert(LocationId::new(1), LocationId::new(3), east(8.0));

    let system = MoLoc::builder(fdb, mdb)
        .config(MoLocConfig::paper())
        .build();
    let mut tracker = system.tracker();

    // First query: the user is at L2 (distinctive, easy).
    let first = tracker.observe(&Fingerprint::new(vec![-41.0, -69.0]), None)?;
    println!("initial estimate: {first}");

    // The user then walks 4 m east and queries with a fingerprint that
    // matches BOTH twins. Plain fingerprinting cannot tell L1 from L3;
    // the motion measurement resolves it.
    let twin_query = Fingerprint::new(vec![-50.1, -49.9]);
    let second = tracker.observe(
        &twin_query,
        Some(MotionMeasurement {
            direction_deg: 88.0,
            offset_m: 4.2,
        }),
    )?;
    println!("after walking 4 m east: {second}");
    assert_eq!(second, LocationId::new(3));

    // Walking back west returns to L2, then further west lands on L1 —
    // the *other* twin, again disambiguated purely by motion.
    let back = tracker.observe(
        &Fingerprint::new(vec![-40.5, -69.5]),
        Some(MotionMeasurement {
            direction_deg: 271.0,
            offset_m: 3.9,
        }),
    )?;
    println!("after walking 4 m west: {back}");
    let far_west = tracker.observe(
        &twin_query,
        Some(MotionMeasurement {
            direction_deg: 269.0,
            offset_m: 4.1,
        }),
    )?;
    println!("after walking another 4 m west: {far_west}");
    assert_eq!(far_west, LocationId::new(1));

    // The retained candidate set is exposed for inspection.
    let candidates = tracker.candidates().expect("tracker has history");
    println!("final candidate probabilities:");
    for (loc, p) in candidates.iter() {
        println!("  {loc}: {p:.4}");
    }
    Ok(())
}
