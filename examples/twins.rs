//! The paper's Fig. 1: distinguishing fingerprint twins with motion.
//!
//! Run with:
//!
//! ```text
//! cargo run --example twins
//! ```
//!
//! Reconstructs the three scenarios of the paper's motivating figure in
//! an open space with two APs on the line `y = 10`:
//!
//! * **(a)** locations mirrored across the AP line see the same
//!   distances to both APs, hence near-identical fingerprints — plain
//!   fingerprinting flips a coin;
//! * **(b)** starting from a *unique* location `p` (on the AP line, its
//!   own mirror) and walking to `q`, the motion measurement resolves
//!   the twins;
//! * **(c)** even with a wrong initial estimate (the user is at `p` but
//!   was localized at its twin `p′`), the retained candidate set plus
//!   motion recovers: the crowdsourced path `p′ → q′` is longer than
//!   `p → q` (a detour around furniture), so the measured offset
//!   singles out the true continuation.

use moloc::geometry::polygon::Aabb;
use moloc::prelude::*;
use moloc::radio::ap::AccessPoint;
use moloc::radio::pathloss::LogDistance;
use moloc::stats::gaussian::Gaussian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig. 1's world:
///
/// ```text
///          p′(L2)      q′(L4)
///   S1 ────── p_b(L5) ─────────── S2    (APs on y = 10)
///          p (L1)      q (L3)
/// ```
///
/// `p`/`p′` and `q`/`q′` mirror each other across the AP line; `p_b`
/// sits *on* the line, so it is its own mirror — the unique starting
/// point of scenario (b).
fn world() -> (RadioEnvironment, Vec<(LocationId, Vec2)>) {
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(30.0, 20.0)).unwrap());
    let env = RadioEnvironment::builder(plan)
        .ap(AccessPoint::new(0, Vec2::new(2.0, 10.0), -18.0))
        .ap(AccessPoint::new(1, Vec2::new(28.0, 10.0), -18.0))
        .path_loss(LogDistance::indoor_office())
        .temporal_sigma_db(2.0)
        .build()
        .expect("two valid APs");
    let locations = vec![
        (LocationId::new(1), Vec2::new(10.0, 6.0)),  // p
        (LocationId::new(2), Vec2::new(10.0, 14.0)), // p′ (mirror of p)
        (LocationId::new(3), Vec2::new(16.0, 6.0)),  // q
        (LocationId::new(4), Vec2::new(16.0, 14.0)), // q′ (mirror of q)
        (LocationId::new(5), Vec2::new(10.0, 10.0)), // p_b, on the AP line
    ];
    (env, locations)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (env, locations) = world();
    let mut rng = StdRng::seed_from_u64(1);

    // Site survey: mean of 40 scans per location.
    let fdb = FingerprintDb::from_samples(locations.iter().map(|&(id, pos)| {
        let scans: Vec<Fingerprint> = (0..40)
            .map(|_| Fingerprint::new(env.scan(pos, &mut rng).into_iter().map(f64::from).collect()))
            .collect();
        (id, scans)
    }))?;

    // Scenario (a): q and q′ really are twins.
    let gap = |a: LocationId, b: LocationId| -> f64 {
        fdb.fingerprint(a)
            .expect("surveyed")
            .values()
            .iter()
            .zip(fdb.fingerprint(b).expect("surveyed").values())
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    println!(
        "(a) fingerprint distance q ↔ q′: {:.2} dB; for comparison p ↔ q: {:.2} dB",
        gap(LocationId::new(3), LocationId::new(4)),
        gap(LocationId::new(1), LocationId::new(3)),
    );

    // The motion database, as crowdsourcing would have built it. The
    // aisle p′ → q′ detours around furniture, so its *walked* offset is
    // 8 m even though the straight-line distance is 6 m — exactly the
    // consistency property of Sec. IV-A.
    let pair = |dir: f64, off: f64| PairStats {
        direction: Gaussian::new(dir, 5.0).expect("valid std"),
        offset: Gaussian::new(off, 0.3).expect("valid std"),
        sample_count: 20,
    };
    let mut mdb = MotionDb::new(5);
    mdb.insert(LocationId::new(1), LocationId::new(3), pair(90.0, 6.0)); // p → q east 6 m
    mdb.insert(LocationId::new(2), LocationId::new(4), pair(90.0, 8.0)); // p′ → q′ east 8 m (detour)
    mdb.insert(LocationId::new(5), LocationId::new(3), pair(123.7, 7.2)); // p_b → q
    mdb.insert(LocationId::new(5), LocationId::new(4), pair(56.3, 7.2)); // p_b → q′

    let system = MoLoc::builder(fdb, mdb).build();
    let scan_at = |pos: Vec2, rng: &mut StdRng| {
        Fingerprint::new(env.scan(pos, rng).into_iter().map(f64::from).collect())
    };

    // Scenario (b): correct initial fix at the unique p_b, then walk
    // south-east to q. The twins q/q′ are separated by the *direction*.
    let mut tracker = system.tracker();
    let initial = tracker.observe(&scan_at(Vec2::new(10.0, 10.0), &mut rng), None)?;
    let walked = tracker.observe(
        &scan_at(Vec2::new(16.0, 6.0), &mut rng),
        Some(MotionMeasurement {
            direction_deg: 122.0,
            offset_m: 7.3,
        }),
    )?;
    println!("(b) initial estimate {initial}, after walking SE: {walked}");
    assert_eq!(initial, LocationId::new(5));
    assert_eq!(
        walked,
        LocationId::new(3),
        "direction should pick q over q′"
    );

    // Scenario (c): the user is at p but the initial scan's noise tips
    // the coin-flip toward the twin p′ — the candidate set retains
    // *both* with near-equal probability, p′ slightly ahead. Walking
    // 6 m east then matches p → q but not p′ → q′ (whose crowdsourced
    // offset is 8 m), so the retained candidates rescue the estimate.
    let mut tracker_c = system.tracker();
    let p_fp = system
        .fingerprint_db()
        .fingerprint(LocationId::new(1))
        .expect("surveyed")
        .clone();
    let p_twin_fp = system
        .fingerprint_db()
        .fingerprint(LocationId::new(2))
        .expect("surveyed")
        .clone();
    // A noisy scan at p that happens to sit slightly closer to p′'s
    // stored fingerprint.
    let tilted = Fingerprint::new(
        p_fp.values()
            .iter()
            .zip(p_twin_fp.values())
            .map(|(a, b)| 0.4 * a + 0.6 * b)
            .collect(),
    );
    let wrong_initial = tracker_c.observe(&tilted, None)?;
    let recovered = tracker_c.observe(
        &scan_at(Vec2::new(16.0, 6.0), &mut rng),
        Some(MotionMeasurement {
            direction_deg: 91.0,
            offset_m: 6.1,
        }),
    )?;
    let candidates = tracker_c.candidates().expect("has history");
    println!(
        "(c) wrong initial estimate {wrong_initial}, after walking 6 m east: {recovered} \
         (posterior q = {:.3}, q′ = {:.3})",
        candidates.probability_of(LocationId::new(3)),
        candidates.probability_of(LocationId::new(4)),
    );
    assert_eq!(
        recovered,
        LocationId::new(3),
        "offset should pick q despite the wrong initial estimate"
    );
    Ok(())
}
