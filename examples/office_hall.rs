//! The full crowdsourcing pipeline on the paper's office-hall testbed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example office_hall
//! ```
//!
//! Builds the simulated 40.8 m × 16 m hall (28 reference locations,
//! 6 APs), conducts the 60-samples-per-location site survey, generates
//! a crowdsourced walking corpus, constructs the motion database with
//! the paper's two-level sanitation, and compares MoLoc against the
//! WiFi fingerprinting baseline on held-out traces — a compressed
//! version of the paper's whole Sec. VI.

use moloc::eval::experiments::fig7;
use moloc::eval::metrics::{error_ecdf, flatten};
use moloc::eval::pipeline::{localize_moloc, localize_wifi, EvalWorld};
use moloc::prelude::*;

fn main() {
    let seed = 42;
    println!("building the office hall, surveying, and walking the corpus (seed {seed})...");
    let world = EvalWorld::small(seed);
    println!(
        "  {} reference locations, {} APs, {} train + {} test traces",
        world.hall.grid.len(),
        world.hall.env.aps().len(),
        world.corpus.train.len(),
        world.corpus.test.len()
    );

    // Build the 6-AP databases; the construction report shows the
    // sanitation at work.
    let setting = world.setting(6);
    println!(
        "  motion database: {} pairs (of {} walkable aisles); {} RLMs observed, {} rejected by the coarse filter, {} by the fine filter",
        setting.motion_db.pair_count(),
        world.hall.graph.edge_count(),
        setting.build_report.observed,
        setting.build_report.rejected_coarse,
        setting.build_report.rejected_fine,
    );

    // A few motion-database entries, the paper's ⟨μᵈ, σᵈ, μᵒ, σᵒ⟩ rows.
    println!("\nsample motion-database entries:");
    for (a, b, stats) in setting.motion_db.iter().take(5) {
        println!(
            "  {a} → {b}: direction {:6.1}° ± {:4.1}°, offset {:4.2} m ± {:4.2} m  ({} samples)",
            stats.direction.mean(),
            stats.direction.std(),
            stats.offset.mean(),
            stats.offset.std(),
            stats.sample_count,
        );
    }

    // Localize the held-out traces with both methods.
    let wifi = localize_wifi(&world, &setting);
    let moloc = localize_moloc(&world, &setting, MoLocConfig::paper());
    let wifi_flat = flatten(&wifi);
    let moloc_flat = flatten(&moloc);
    let wifi_acc =
        wifi_flat.iter().filter(|o| o.is_accurate()).count() as f64 / wifi_flat.len() as f64;
    let moloc_acc =
        moloc_flat.iter().filter(|o| o.is_accurate()).count() as f64 / moloc_flat.len() as f64;

    println!("\nheld-out localization over {} passes:", wifi_flat.len());
    println!("  WiFi fingerprinting: accuracy {:4.1}%", wifi_acc * 100.0);
    println!("  MoLoc:               accuracy {:4.1}%", moloc_acc * 100.0);

    let wifi_ecdf = error_ecdf(&wifi_flat);
    let moloc_ecdf = error_ecdf(&moloc_flat);
    println!("\nerror CDF (m):         WiFi    MoLoc");
    for x in [0.0, 2.0, 4.0, 6.0, 8.0, 12.0] {
        println!(
            "  P(err <= {x:4.1})      {:5.2}    {:5.2}",
            wifi_ecdf.fraction_at_or_below(x),
            moloc_ecdf.fraction_at_or_below(x)
        );
    }

    // The same machinery backs the paper-figure runner:
    let result = fig7::run_setting(&world, &setting, MoLocConfig::paper());
    println!(
        "\nfig7-style summary @6 AP: WiFi mean err {:.2} m, MoLoc mean err {:.2} m",
        result.wifi.summary.mean_error_m, result.moloc.summary.mean_error_m
    );
    assert!(moloc_acc > wifi_acc, "MoLoc should beat the baseline");
}
