//! Crowdsourced motion-database construction, step by step.
//!
//! Run with:
//!
//! ```text
//! cargo run --example crowdsourcing
//! ```
//!
//! Walks through Sec. IV of the paper on a small world: render one
//! user's sensor trace, extract per-interval measurements (steps via
//! CSC, raw compass direction), calibrate the heading offset, form
//! RLMs between *estimated* locations, and watch the two-level
//! sanitation separate good measurements from bad ones — including a
//! batch of deliberately corrupted RLMs.

use moloc::geometry::polygon::Aabb;
use moloc::mobility::intervals::measure_intervals;
use moloc::mobility::render::TraceRenderer;
use moloc::mobility::trajectory::Trajectory;
use moloc::mobility::user::paper_users;
use moloc::prelude::*;
use moloc::radio::ap::AccessPoint;
use moloc::sensors::counting::csc;
use moloc::sensors::heading::HeadingOffsetEstimator;
use moloc::sensors::stride::offset_m;
use moloc::stats::circular::normalize_deg;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4×2 grid of reference locations in a small hall.
    let plan = FloorPlan::new(Aabb::new(Vec2::ZERO, Vec2::new(22.0, 12.0)).unwrap());
    let grid = ReferenceGrid::new(Vec2::new(3.0, 9.0), 4, 2, 5.0, 5.0)?;
    let graph = WalkGraph::from_grid(&grid, &plan);
    let env = RadioEnvironment::builder(plan)
        .ap(AccessPoint::new(0, Vec2::new(5.0, 6.0), -18.0))
        .ap(AccessPoint::new(1, Vec2::new(17.0, 6.0), -18.0))
        .ap(AccessPoint::new(2, Vec2::new(11.0, 2.0), -18.0))
        .temporal_sigma_db(2.0)
        .build()?;

    // Survey the fingerprint database (the prerequisite of Sec. IV).
    let mut rng = StdRng::seed_from_u64(7);
    let fdb = FingerprintDb::from_samples(grid.ids().map(|id| {
        let pos = grid.position(id);
        let scans: Vec<Fingerprint> = (0..40)
            .map(|_| Fingerprint::new(env.scan(pos, &mut rng).into_iter().map(f64::from).collect()))
            .collect();
        (id, scans)
    }))?;
    let localizer = NnLocalizer::new(&fdb);

    // One crowdsourcing user walks the same loop several times (each
    // pass contributes measurements; the paper's users walked for half
    // an hour each).
    let user = paper_users()[2];
    let loop_ids = [1u32, 2, 3, 4, 8, 7, 6, 5];
    let mut path: Vec<LocationId> = Vec::new();
    for lap in 0..5 {
        let skip = usize::from(lap > 0); // consecutive laps share a node
        path.extend(loop_ids.iter().skip(skip).map(|&i| LocationId::new(i)));
    }
    path.push(LocationId::new(1));
    let trajectory = Trajectory::from_path(&path, &grid, &user)?;
    let trace = TraceRenderer::default().render(&trajectory, &user, &env, &mut rng);
    println!(
        "rendered a {:.0}-second trace: {} passes, {} accel samples",
        trace.duration(),
        trace.pass_count(),
        trace.accel.len()
    );

    // Motion processing: steps and raw directions per interval.
    let detector = StepDetector::default();
    let intervals = measure_intervals(&trace, &detector);
    println!("\nfirst per-interval motion measurements:");
    for m in intervals.iter().take(8) {
        println!(
            "  interval {} → {}: {:.1} steps (CSC), raw direction {:6.1}°",
            m.from_index,
            m.to_index,
            m.steps_csc,
            m.raw_direction_deg.unwrap_or(f64::NAN)
        );
    }

    // Location estimates at each pass, via the fingerprint engine.
    let estimates: Vec<LocationId> = trace
        .scans
        .iter()
        .map(|scan| localizer.localize(&Fingerprint::new(scan.clone())))
        .collect::<Result<_, _>>()?;

    // Zee-style heading-offset calibration against map bearings of the
    // estimated endpoints.
    let map = MapReference::new(&grid, &graph);
    let mut calib = HeadingOffsetEstimator::new();
    for m in &intervals {
        let (from, to) = (estimates[m.from_index], estimates[m.to_index]);
        if from == to {
            continue;
        }
        if let (Some(raw), Some(reference)) = (m.raw_direction_deg, map.direction_deg(from, to)) {
            calib.observe(raw, reference);
        }
    }
    let offset = calib.offset_deg_trimmed(45.0).unwrap_or(0.0);
    let truth = user.placement_offset_deg + user.compass_bias_deg;
    println!(
        "\nheading calibration: estimated offset {offset:.1}° (true placement offset {truth:.1}°)"
    );

    // Feed the RLMs through the sanitizing builder, plus some corrupted
    // ones a buggy client might upload.
    let mut builder = MotionDbBuilder::new(map, SanitationConfig::paper())?;
    for m in &intervals {
        let (from, to) = (estimates[m.from_index], estimates[m.to_index]);
        if from == to {
            continue;
        }
        let Some(raw) = m.raw_direction_deg else {
            continue;
        };
        let rlm = Rlm::new(
            from,
            to,
            normalize_deg(raw - offset),
            offset_m(m.steps_csc, user.step_length_m()),
        )?;
        builder.observe(rlm);
    }
    // Corrupted uploads: offsets wildly off (e.g. step counter ran
    // during a bus ride).
    for k in 0..5 {
        let bad = Rlm::new(
            LocationId::new(1),
            LocationId::new(2),
            90.0,
            25.0 + k as f64,
        )?;
        builder.observe(bad);
    }
    let (db, report) = builder.build();
    println!("\nsanitation report: {report:?}");
    println!("motion database holds {} pairs:", db.pair_count());
    for (a, b, stats) in db.iter() {
        println!(
            "  {a} ↔ {b}: {:6.1}° ± {:4.1}°, {:4.2} m ± {:4.2} m",
            stats.direction.mean(),
            stats.direction.std(),
            stats.offset.mean(),
            stats.offset.std()
        );
    }
    // CSC's decimal steps in action: compare one interval's DSC/CSC.
    if let Some(m) = intervals.first() {
        println!(
            "\nstep counting on the first interval: DSC {:.0} steps vs CSC {:.2} steps over {:.1} s",
            m.steps_dsc, m.steps_csc, m.duration_s
        );
        let accel = trace.accel.slice_time(0.0, m.duration_s);
        let steps = detector.detect(&accel);
        println!("   (CSC recomputed: {:.2})", csc(&steps, m.duration_s));
    }
    Ok(())
}
