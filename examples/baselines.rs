//! Four localizers on one world: WiFi NN, Horus, offline HMM, MoLoc.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example baselines
//! ```
//!
//! The paper evaluates MoLoc against plain WiFi fingerprinting; its
//! related work discusses Horus-style probabilistic fingerprinting and
//! accelerometer-assisted HMM localization. This example runs all four
//! on the simulated office hall and prints accuracy, error, and cost —
//! making the paper's "efficiency over delicacy" argument concrete.

use moloc::core::viterbi::ViterbiLocalizer;
use moloc::eval::experiments::baselines;
use moloc::eval::pipeline::EvalWorld;
use moloc::fingerprint::horus::HorusLocalizer;
use moloc::prelude::*;

fn main() {
    let world = EvalWorld::small(7);
    let setting = world.setting(6);

    // The one-call comparison used by the evaluation harness.
    let comparison = baselines::run(&world, &setting);
    println!("{}", baselines::render(&comparison));

    // The same localizers are ordinary library types; a few direct
    // calls to show the API shape.
    println!("direct API usage:");

    // Horus: train per-AP Gaussians on the survey samples.
    let horus = HorusLocalizer::train(world.survey.locations().iter().map(|loc| {
        (
            loc.location,
            loc.fingerprint
                .iter()
                .map(|scan| Fingerprint::new(scan.iter().map(|d| d.value()).collect()))
                .collect::<Vec<_>>(),
        )
    }))
    .expect("survey is complete");
    let trace = &world.corpus.test[0];
    let first_scan = Fingerprint::new(trace.scans[0].clone());
    println!(
        "  Horus says the first pass of test trace 0 is at {}",
        horus.localize(&first_scan).expect("query matches")
    );

    // The HMM decodes the whole trace at once (it cannot answer before
    // the trace ends — one of the paper's arguments for the online
    // candidate tracker instead).
    let viterbi = ViterbiLocalizer::new(&setting.fdb, &setting.motion_db, MoLocConfig::paper());
    let queries: Vec<(Fingerprint, Option<MotionMeasurement>)> = trace
        .scans
        .iter()
        .map(|scan| (Fingerprint::new(scan.clone()), None))
        .collect();
    let path = viterbi.localize_trace(&queries).expect("non-empty trace");
    let truth_hits = path
        .iter()
        .zip(&trace.passes)
        .filter(|(est, pass)| **est == pass.location)
        .count();
    println!(
        "  HMM (fingerprints only) decodes trace 0 with {truth_hits}/{} correct passes",
        trace.pass_count()
    );

    // MoLoc answers online, pass by pass.
    let system = MoLoc::builder(setting.fdb.clone(), setting.motion_db.clone()).build();
    let mut tracker = system.tracker();
    let online_first = tracker
        .observe(&first_scan, None)
        .expect("query matches the database");
    println!("  MoLoc's first online estimate for the same trace: {online_first}");
}
